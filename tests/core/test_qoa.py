"""Tests for the Quality of Attestation metric."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QoA, detection_probability, expected_freshness
from repro.core.qoa import expected_detection_latency


def test_expected_freshness_is_half_tm():
    assert expected_freshness(60.0) == pytest.approx(30.0)
    with pytest.raises(ValueError):
        expected_freshness(0.0)


def test_detection_probability_shape():
    assert detection_probability(0.0, 60.0) == 0.0
    assert detection_probability(30.0, 60.0) == pytest.approx(0.5)
    assert detection_probability(60.0, 60.0) == pytest.approx(1.0)
    assert detection_probability(600.0, 60.0) == 1.0
    with pytest.raises(ValueError):
        detection_probability(-1.0, 60.0)
    with pytest.raises(ValueError):
        detection_probability(1.0, 0.0)


def test_expected_detection_latency():
    assert expected_detection_latency(60.0, 600.0) == pytest.approx(330.0)
    with pytest.raises(ValueError):
        expected_detection_latency(0.0, 600.0)


def test_qoa_properties():
    qoa = QoA(measurement_interval=60.0, collection_interval=600.0)
    assert qoa.measurements_per_collection == 10
    assert qoa.expected_freshness == pytest.approx(30.0)
    assert qoa.worst_case_freshness == pytest.approx(60.0)
    assert qoa.expected_detection_latency() == pytest.approx(330.0)


def test_on_demand_qoa_degenerate_case():
    on_demand = QoA(600.0, 600.0, on_demand_only=True)
    assert on_demand.expected_freshness == 0.0
    assert on_demand.worst_case_freshness == 0.0
    # On-demand detection window is T_C, so short-lived malware escapes.
    assert on_demand.detection_probability(60.0) == pytest.approx(0.1)


def test_erasmus_detects_better_than_on_demand_for_same_tc():
    erasmus = QoA(60.0, 600.0)
    on_demand = QoA(600.0, 600.0, on_demand_only=True)
    for dwell in (10.0, 60.0, 300.0):
        assert erasmus.detection_probability(dwell) >= \
            on_demand.detection_probability(dwell)


def test_stronger_than_comparison():
    baseline = QoA(60.0, 600.0)
    assert QoA(30.0, 600.0).stronger_than(baseline)
    assert QoA(60.0, 300.0).stronger_than(baseline)
    assert not baseline.stronger_than(baseline)
    assert not QoA(120.0, 300.0).stronger_than(baseline)


def test_invalid_intervals_rejected():
    with pytest.raises(ValueError):
        QoA(0.0, 600.0)
    with pytest.raises(ValueError):
        QoA(60.0, -1.0)


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=0.1, max_value=1e5, allow_nan=False),
       st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
def test_detection_probability_bounds(measurement_interval, dwell):
    probability = detection_probability(dwell, measurement_interval)
    assert 0.0 <= probability <= 1.0
    # Monotone in dwell time: staying longer never helps the malware.
    assert detection_probability(dwell * 2, measurement_interval) >= probability
