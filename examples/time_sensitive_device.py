#!/usr/bin/env python3
"""Time-sensitive device: irregular intervals + lenient scheduling.

Section 5 scenario: a safety-critical actuator cannot afford to be
blocked for seconds at an arbitrary moment, and Section 3.5's
schedule-aware malware tries to slip between measurements.  This
example shows:

* how a CSPRNG-driven irregular schedule removes the adversary's
  certainty of evading detection;
* how a lenient window (``w * T_M``) lets the device abort measurements
  that collide with critical tasks and still recover most of them.

Run with:  python examples/time_sensitive_device.py
"""

from repro.adversary.roving import ScheduleAwareMalware
from repro.core import ErasmusConfig, ScheduleKind
from repro.core.scheduler import IrregularScheduler, RegularScheduler
from repro.experiments import availability
from repro.fleet import DeviceProfile, FleetVerifier
from repro.sim import SimulationEngine

KEY = b"\x13" * 16
FIRMWARE = b"actuator-firmware-v2" + bytes(512)


def evasion_demo() -> None:
    """Schedule-aware malware vs regular and irregular schedules."""
    measurement_interval = 60.0
    malware = ScheduleAwareMalware(dwell=0.9 * measurement_interval, seed=1)

    regular = RegularScheduler(measurement_interval)
    irregular = IrregularScheduler(KEY, lower=0.5 * measurement_interval,
                                   upper=1.5 * measurement_interval)

    regular_result = malware.simulate(regular, trials=2000)
    irregular_result = malware.simulate(irregular, trials=2000)
    print("Schedule-aware malware (dwell = 0.9 * T_M):")
    print(f"  regular schedule:   evasion probability "
          f"{regular_result.evasion_probability:.2f}")
    print(f"  irregular schedule: evasion probability "
          f"{irregular_result.evasion_probability:.2f}")


def lenient_scheduling_demo() -> None:
    """Critical-task collisions under strict vs lenient scheduling."""
    rows = availability.run(measurement_interval=60.0,
                            measurement_runtime=7.0,
                            task_period=45.0, task_busy_time=10.0,
                            window_factors=(1.0, 2.0),
                            horizon=6 * 3600.0)
    print("\nCritical-task collisions over 6 hours:")
    for row in rows:
        label = "strict (w=1)" if row["window_factor"] == 1.0 \
            else f"lenient (w={row['window_factor']:.0f})"
        print(f"  {label:<16} measurements lost: {row['lost']:>3} "
              f"of {row['measurements_scheduled']} "
              f"(loss rate {row['loss_rate']:.1%})")


def full_prover_demo() -> None:
    """An end-to-end irregular-schedule prover with a critical task."""
    config = ErasmusConfig(measurement_interval=60.0,
                           collection_interval=600.0,
                           buffer_slots=32,
                           schedule=ScheduleKind.IRREGULAR,
                           mac_name="keyed-blake2s")
    profile = DeviceProfile.smartplus(firmware=FIRMWARE,
                                      application_size=2048,
                                      config=config)

    # The actuator is busy for 5 s out of every 90 s; measurements that
    # would land in a busy window are aborted.
    def critical_task_active(time: float) -> bool:
        return (time % 90.0) < 5.0

    device = profile.provision("actuator-7", key=KEY,
                               critical_task_active=critical_task_active)
    prover = device.prover
    # Section 5: the verifier needs a policy for justified absences —
    # here it tolerates a few measurements aborted by the critical task.
    verifier = FleetVerifier(config, allowed_missing=6)
    verifier.enroll_device(device)

    engine = SimulationEngine()
    prover.attach(engine)
    engine.run(until=3600.0)

    response = prover.handle_collect(verifier.create_collect_request(k=32))
    report = verifier.verify_collection("actuator-7", response,
                                        collection_time=engine.now)
    print("\nIrregular-schedule prover after one hour:")
    print(f"  measurements taken:   {prover.measurements_taken}")
    print(f"  measurements aborted: {prover.measurements_aborted} "
          f"(critical task was running)")
    print(f"  verifier status:      {report.status.value}")
    print(f"  busy fraction:        {prover.busy_fraction(0, engine.now):.2%}")


def main() -> None:
    evasion_demo()
    lenient_scheduling_demo()
    full_prover_demo()


if __name__ == "__main__":
    main()
