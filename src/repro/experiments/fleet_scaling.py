"""Multi-process fleet scaling: devices/second versus worker count.

Not a paper artifact — this harness characterizes the reproduction's
own fleet service beyond the single-process ceiling: one batched
``collect_all`` round over the same provisioned fleet, driven through

* the pipelined single-process ``collect_all`` (``async-baseline``),
* the sharded verifier with every shard on one event loop
  (``sharded-loop``), and
* the sharded verifier with ``worker_mode="process"``
  (``sharded-process``) — wire exchange in the parent, verification
  fanned out to spawned worker processes.

Provisioning is deterministic (profile plus master secret), so every
mode verifies an identical fleet with identical measurement histories;
each row therefore also carries the SHA-256 of the merged
:class:`repro.fleet.FleetHealth` row, which must be byte-identical
across modes — the scaling rows are only comparable because the
answers are provably the same.  Backs
``benchmarks/test_fleet_scaling.py``.
"""

from __future__ import annotations

import asyncio
import gc
import hashlib
import json
import time
from typing import Dict, List, Optional, Sequence

from repro.experiments.fleet_collection import default_profile
from repro.fleet import DeviceProfile, Fleet

#: Collection paths compared by :func:`run_scaling_comparison`.
SCALING_MODES: Sequence[str] = ("async-baseline", "sharded-loop",
                                "sharded-process")


def run_round(mode: str, device_count: int, workers: int = 4,
              transport: str = "in-process",
              profile: Optional[DeviceProfile] = None,
              horizon: Optional[float] = None) -> Dict[str, object]:
    """One full fleet round through one collection path; returns a row.

    ``workers`` is the shard/worker-process count for the sharded
    modes (the baseline ignores it).  The row's ``health_sha256``
    fingerprints the merged fleet-health row — equal fingerprints mean
    the round produced byte-identical health no matter where
    verification ran.
    """
    if mode not in SCALING_MODES:
        known = ", ".join(SCALING_MODES)
        raise ValueError(f"unknown scaling mode {mode!r}; known: {known}")
    if workers < 1:
        raise ValueError("workers must be positive")
    profile = profile if profile is not None else default_profile()
    if horizon is None:
        horizon = profile.config.collection_interval
    sharded = mode != "async-baseline"
    started = time.perf_counter()
    with Fleet.provision(
            profile, device_count,
            master_secret=b"fleet-scaling-master-secret",
            transport=transport,
            shards=workers if sharded else None,
            worker_mode="process" if mode == "sharded-process"
            else "loop") as fleet:
        provisioned = time.perf_counter()
        fleet.run_until(horizon)
        if mode == "sharded-process":
            # Spawn the workers and ship enrollments outside the
            # measured window: the row characterizes a steady-state
            # round, not the one-time process cold start.
            fleet.verifier.warm_up()
        # Sweep provisioning/measurement garbage before the measured
        # window so a stray gen-2 GC pause does not land inside
        # whichever mode happens to trigger it.
        gc.collect()
        reports = fleet.collect_all()
        finished = time.perf_counter()
        health_row = json.dumps(fleet.verifier.health.to_row(),
                                sort_keys=True).encode("utf-8")
    stats = reports.stats
    wall_time = finished - started
    return {
        "mode": mode,
        "transport": transport,
        "workers": workers if sharded else 1,
        "devices": device_count,
        "reports": len(reports),
        "responses_lost": stats.responses_lost,
        "provision_s": provisioned - started,
        "collect_s": stats.wall_seconds,
        "wall_time_s": wall_time,
        "collect_devices_per_second": stats.devices_per_second,
        "health_sha256": hashlib.sha256(health_row).hexdigest(),
    }


def run_scaling_comparison(device_count: int = 1000,
                           worker_counts: Sequence[int] = (1, 2, 4),
                           transport: str = "in-process",
                           repeats: int = 1) -> List[Dict[str, object]]:
    """The scaling table: baseline plus both sharded modes per count.

    Each row is the best of ``repeats`` attempts (fresh fleet per
    attempt, ranked by ``collect_s``) — a round lasts ~100 ms, so one
    stray GC pause or scheduler hiccup otherwise dominates the row.
    Raises when any row's health fingerprint disagrees with the
    baseline's: a scaling number for a *different answer* is not a
    scaling number.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    # Pay the process-wide asyncio bootstrap outside the measured rows.
    asyncio.run(asyncio.sleep(0))

    def best_of(mode: str, workers: int) -> Dict[str, object]:
        best: Optional[Dict[str, object]] = None
        for _ in range(repeats):
            row = run_round(mode, device_count, workers=workers,
                            transport=transport)
            if best is None or row["collect_s"] < best["collect_s"]:
                best = row
        assert best is not None
        return best

    rows = [best_of("async-baseline", 1)]
    for workers in worker_counts:
        rows.append(best_of("sharded-loop", workers))
        rows.append(best_of("sharded-process", workers))
    fingerprint = rows[0]["health_sha256"]
    for row in rows:
        if row["health_sha256"] != fingerprint:
            raise AssertionError(
                f"{row['mode']} (workers={row['workers']}) produced a "
                f"different merged FleetHealth than the baseline")
    return rows


def format_scaling_table(rows: List[Dict[str, object]]) -> str:
    """Render the scaling comparison as a fixed-width table."""
    baseline = rows[0]
    baseline_rate = float(baseline["collect_devices_per_second"])
    header = (f"{'mode':<16} {'workers':>8} {'devices':>8} "
              f"{'collect (s)':>12} {'collect dev/s':>14} "
              f"{'vs baseline':>12}")
    lines = [header, "-" * len(header)]
    for row in rows:
        relative = float(row["collect_devices_per_second"]) / baseline_rate \
            if baseline_rate else 0.0
        lines.append(
            f"{row['mode']:<16} {row['workers']:>8} {row['devices']:>8} "
            f"{row['collect_s']:>12.3f} "
            f"{row['collect_devices_per_second']:>14.0f} {relative:>11.1%}")
    return "\n".join(lines)


def main() -> None:
    rows = run_scaling_comparison(device_count=500, worker_counts=(1, 2, 4))
    print(format_scaling_table(rows))


if __name__ == "__main__":
    main()
