#!/usr/bin/env python3
"""Sharded collection: 10,000 devices drained across 4 shard verifiers.

ERASMUS decouples measurement from collection, so nothing forces a
verifier to drain its fleet in lock-step batches.  This example runs
the same 10,000-device round twice:

1. **synchronous baseline** — one ``FleetVerifier``, the strictly
   sequential reference round (``pipeline=False``): exchange a batch,
   verify it, exchange the next;
2. **async sharded** — a ``ShardedFleetVerifier`` with 4 shard
   workers, each draining its shard through the awaitable collection
   pipeline (pre-compiled per-device verification, exchange overlapping
   verification), with the per-shard ``FleetHealth`` aggregates merged
   into one fleet-wide view.

Provisioning is deterministic (same profile, same master secret), so
the two fleets carry identical devices with identical measurement
histories — the printed wall-clock difference is purely the collection
path, and the merged sharded health is *byte-identical* to the single
verifier's.

Run with:  python examples/sharded_collection.py
"""

import gc
import json
import time

from repro.fleet import DeviceProfile, Fleet

FLEET_SIZE = 10_000
SHARDS = 4
INFECTED = ("dev-0042", "dev-2718", "dev-9001")
FIRMWARE = b"turbine-firmware-v7" + bytes(200)
MALWARE = b"persistent-implant!" + bytes(210)
MASTER_SECRET = b"factory-floor-master-secret"


def provision(shards=None) -> Fleet:
    """One deterministic 10k fleet, measured up to the collection time."""
    profile = DeviceProfile.smartplus(firmware=FIRMWARE,
                                      application_size=512,
                                      measurement_interval=60.0,
                                      collection_interval=600.0,
                                      buffer_slots=16)
    fleet = Fleet.provision(profile, FLEET_SIZE,
                            master_secret=MASTER_SECRET, shards=shards)
    fleet.run_until(300.0)
    for device_id in INFECTED:
        fleet.device(device_id).load_application(MALWARE)
    fleet.run_until(600.0)
    return fleet


def health_fingerprint(fleet: Fleet) -> bytes:
    return json.dumps(fleet.health.to_row(), sort_keys=True,
                      separators=(",", ":")).encode()


def main() -> None:
    print(f"provisioning two deterministic twins of {FLEET_SIZE} devices...")
    baseline_fleet = provision()
    sharded_fleet = provision(shards=SHARDS)

    # Sweep provisioning garbage out of the way so neither timed round
    # absorbs a multi-ten-ms gen-2 GC pause the other one skipped.
    gc.collect()
    started = time.perf_counter()
    baseline_reports = baseline_fleet.collect_all(pipeline=False)
    baseline_wall = time.perf_counter() - started

    gc.collect()
    started = time.perf_counter()
    sharded_reports = sharded_fleet.collect_all()
    sharded_wall = time.perf_counter() - started

    print(f"\nsync baseline : {len(baseline_reports)} reports in "
          f"{baseline_wall:.2f}s "
          f"({len(baseline_reports) / baseline_wall:,.0f} devices/second)")
    stats = sharded_reports.stats
    print(f"async sharded : {len(sharded_reports)} reports in "
          f"{sharded_wall:.2f}s "
          f"({len(sharded_reports) / sharded_wall:,.0f} devices/second, "
          f"{stats.shards} pipeline shard(s) over {SHARDS} workers)")
    print(f"speedup       : {baseline_wall / sharded_wall:.2f}x")

    flagged = sorted(report.device_id for report in sharded_reports
                     if report.detected_infection())
    print(f"\ninfected mid-interval: {sorted(INFECTED)}")
    print(f"flagged by collection: {flagged}")
    print()
    print(sharded_fleet.health.summary())

    identical = health_fingerprint(baseline_fleet) == \
        health_fingerprint(sharded_fleet)
    print(f"\nmerged sharded health byte-identical to single verifier: "
          f"{identical}")
    if not identical or set(flagged) != set(INFECTED):
        raise SystemExit("sharded collection diverged from the baseline")


if __name__ == "__main__":
    main()
