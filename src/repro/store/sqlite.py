"""SQLite state store: one database file, indexed per-device history.

Where :class:`~repro.store.jsonl.JsonlStore` optimizes for a grep-able
recovery log, this backend optimizes for queries: every report ever
accepted is kept in an indexed ``reports`` table, so per-device history
(``device_history``) stays fast at millions of rows, and enrollments
are upserted in place rather than journaled.

The checkpoint document (same canonical bytes as the JSONL snapshot)
is stored in a ``meta`` table; recovery loads it and replays only the
reports appended after its journal position, exactly like the JSONL
backend — the two differ purely in medium.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.core.verification import Enrollment, VerificationReport
from repro.store.base import (
    RestoredState,
    Row,
    StateStore,
    StoreError,
    _drop_reset_collection_times,
    apply_report_row,
    encode_snapshot,
    snapshot_document,
    state_from_snapshot,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS enrollments (
    device_id TEXT PRIMARY KEY,
    row       TEXT NOT NULL,
    -- Report seq at the time of this enrollment write: replay must not
    -- advance last_seen past a deliberate re-enrollment reset.
    saved_seq INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS reports (
    seq       INTEGER PRIMARY KEY AUTOINCREMENT,
    device_id TEXT NOT NULL,
    row       TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_reports_device ON reports (device_id, seq);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

_SNAPSHOT_KEY = "snapshot"


class SqliteStore(StateStore):
    """Single-file SQLite persistence for verifier state."""

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = str(path)
        self._conn: Optional[sqlite3.Connection] = None
        try:
            # check_same_thread=False: the store itself is single-writer
            # (callers must serialize, e.g. the sharded verifier's
            # lock-guarded wrapper), but the serialized calls may come
            # from different threads — sqlite3's same-thread affinity
            # check would reject those even though they never overlap.
            self._conn = sqlite3.connect(self.path, check_same_thread=False)
        except sqlite3.Error as exc:
            raise StoreError(f"cannot open SQLite store {self.path}") from exc
        self._conn.executescript(_SCHEMA)
        # WAL keeps append_report a sequential write; NORMAL sync is the
        # standard durability/throughput trade for a recovery log.
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.commit()

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            raise StoreError(f"SQLite store {self.path} is closed")
        return self._conn

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def save_enrollment(self, enrollment: Enrollment) -> None:
        conn = self._connection()
        conn.execute(
            "INSERT OR REPLACE INTO enrollments (device_id, row, saved_seq) "
            "VALUES (?, ?, ?)",
            (enrollment.device_id,
             json.dumps(enrollment.to_row(), sort_keys=True),
             self._newest_seq()))
        conn.commit()

    def append_report(self, report: VerificationReport) -> None:
        conn = self._connection()
        conn.execute(
            "INSERT INTO reports (device_id, row) VALUES (?, ?)",
            (report.device_id,
             json.dumps(report.to_row(), sort_keys=True)))
        conn.commit()

    def checkpoint(self, health: Any,
                   last_collection_times: Mapping[str, float],
                   rounds_completed: int = 0) -> None:
        document = snapshot_document(
            self._load_enrollments(), health, last_collection_times,
            rounds_completed, journal_seq=self._newest_seq())
        conn = self._connection()
        conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            (_SNAPSHOT_KEY, encode_snapshot(document).decode("utf-8")))
        conn.commit()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _newest_seq(self) -> int:
        row = self._connection().execute(
            "SELECT COALESCE(MAX(seq), 0) FROM reports").fetchone()
        return int(row[0])

    def _load_enrollments(self) -> Dict[str, Enrollment]:
        enrollments: Dict[str, Enrollment] = {}
        for device_id, payload in self._connection().execute(
                "SELECT device_id, row FROM enrollments"):
            enrollments[device_id] = Enrollment.from_row(json.loads(payload))
        return enrollments

    def restore_state(self) -> RestoredState:
        state, snapshot_seq = state_from_snapshot(self.state_rows())
        # Enrollments are upserted in place, so the table is always the
        # freshest copy; the replay below only has to catch the health
        # aggregate and collection times up past the checkpoint.  A
        # report older than the device's newest enrollment write must
        # not advance last_seen — the write already reflects it (or
        # deliberately reset it via a re-enrollment).
        state.enrollments = self._load_enrollments()
        saved_seq = {device_id: int(seq) for device_id, seq
                     in self._connection().execute(
                         "SELECT device_id, saved_seq FROM enrollments")}
        last_report_seq: Dict[str, int] = {}
        for seq, device_id, payload in self._connection().execute(
                "SELECT seq, device_id, row FROM reports WHERE seq > ? "
                "ORDER BY seq", (snapshot_seq,)):
            row = json.loads(payload)
            if int(row.get("measurements", 0)):
                last_report_seq[device_id] = int(seq)
            apply_report_row(row, state,
                             advance=int(seq) > saved_seq.get(device_id, 0))
        _drop_reset_collection_times(state, saved_seq, last_report_seq)
        return state

    def has_enrollment(self, device_id: str) -> bool:
        row = self._connection().execute(
            "SELECT 1 FROM enrollments WHERE device_id = ?",
            (device_id,)).fetchone()
        return row is not None

    def device_history(self, device_id: str,
                       limit: Optional[int] = None) -> List[Row]:
        if limit is not None:
            # Let the (device_id, seq) index bound the work: newest
            # ``limit`` rows, then restored to oldest-first order.
            newest = self._connection().execute(
                "SELECT row FROM reports WHERE device_id = ? "
                "ORDER BY seq DESC LIMIT ?",
                (device_id, limit)).fetchall()
            return [json.loads(payload) for (payload,) in reversed(newest)]
        return [json.loads(payload) for (payload,) in
                self._connection().execute(
            "SELECT row FROM reports WHERE device_id = ? ORDER BY seq",
            (device_id,))]

    def state_rows(self) -> Optional[Row]:
        row = self._connection().execute(
            "SELECT value FROM meta WHERE key = ?",
            (_SNAPSHOT_KEY,)).fetchone()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except json.JSONDecodeError as exc:
            raise StoreError(
                f"corrupt snapshot in SQLite store {self.path}") from exc

    def state_bytes(self) -> bytes:
        row = self._connection().execute(
            "SELECT value FROM meta WHERE key = ?",
            (_SNAPSHOT_KEY,)).fetchone()
        return b"" if row is None else row[0].encode("utf-8")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        if self._conn is not None:
            self._conn.commit()

    def close(self) -> None:
        if self._conn is None:
            return
        self._conn.commit()
        self._conn.close()
        self._conn = None
