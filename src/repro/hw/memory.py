"""Memory regions and hardware-enforced access control.

SMART+ and HYDRA both hinge on memory access rules:

* the attestation key ``K`` is readable *only* by the attestation code
  (hard-wired MCU rules in SMART+, seL4 capabilities in HYDRA);
* the attestation code itself is immutable (ROM in SMART+, secure-boot
  verified in HYDRA);
* the measurement history lives in ordinary *insecure* memory — malware
  may read, modify, reorder or delete it (Section 3.2), and the design
  must remain safe regardless.

This module models those rules.  Every read/write happens under an
:class:`AccessContext` (who is executing); region policies decide
whether the access is allowed.  Violations raise :class:`AccessViolation`
— in real hardware this would be a bus fault / MCU reset.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional


class RegionKind(enum.Enum):
    """Physical flavour of a memory region."""

    ROM = "rom"
    RAM = "ram"
    FLASH = "flash"
    PERIPHERAL = "peripheral"


class AccessContext(enum.Enum):
    """Who is performing a memory access.

    ``ATTESTATION`` models execution from within the protected
    measurement routine (ROM code in SMART+, the PrAtt process in
    HYDRA).  ``NORMAL`` is the untrusted application world — including
    any malware that may have compromised it.  ``DMA`` models peripheral
    masters, which SMART forbids from touching the key region.
    """

    ATTESTATION = "attestation"
    NORMAL = "normal"
    DMA = "dma"


class AccessViolation(Exception):
    """A memory access violated the hardware access-control rules."""


@dataclass
class AccessPolicy:
    """Per-region access rules, expressed per :class:`AccessContext`.

    ``readable`` / ``writable`` list the contexts allowed to perform the
    respective access.  ``executable`` marks regions that may hold code.
    """

    readable: frozenset[AccessContext] = frozenset(AccessContext)
    writable: frozenset[AccessContext] = frozenset(AccessContext)
    executable: bool = False

    @classmethod
    def open(cls) -> "AccessPolicy":
        """Fully open region (ordinary RAM/flash)."""
        return cls(frozenset(AccessContext), frozenset(AccessContext))

    @classmethod
    def rom_code(cls) -> "AccessPolicy":
        """Read/execute for everyone, writable by nobody (true ROM)."""
        return cls(frozenset(AccessContext), frozenset(), executable=True)

    @classmethod
    def secret_key(cls) -> "AccessPolicy":
        """Readable only from the attestation context, never writable."""
        return cls(frozenset({AccessContext.ATTESTATION}), frozenset())

    @classmethod
    def attestation_private(cls) -> "AccessPolicy":
        """Read/write only from the attestation context (K-related scratch)."""
        only = frozenset({AccessContext.ATTESTATION})
        return cls(only, only)

    @classmethod
    def read_only_peripheral(cls) -> "AccessPolicy":
        """Readable by everyone, writable by nobody (the RROC register)."""
        return cls(frozenset(AccessContext), frozenset())


@dataclass
class MemoryRegion:
    """A contiguous, named region of device memory."""

    name: str
    base: int
    size: int
    kind: RegionKind
    policy: AccessPolicy = field(default_factory=AccessPolicy.open)
    data: bytearray = field(default_factory=bytearray)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"region {self.name!r} must have positive size")
        if self.base < 0:
            raise ValueError(f"region {self.name!r} must have non-negative base")
        if not self.data:
            self.data = bytearray(self.size)
        elif len(self.data) != self.size:
            raise ValueError(
                f"region {self.name!r}: initial data length {len(self.data)} "
                f"does not match size {self.size}")

    @property
    def end(self) -> int:
        """First address past the region."""
        return self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        """True when ``[address, address+length)`` lies inside the region."""
        return self.base <= address and address + length <= self.end

    def overlaps(self, other: "MemoryRegion") -> bool:
        """True when the two regions share any address."""
        return self.base < other.end and other.base < self.end


class DeviceMemory:
    """A full device memory map with access-controlled reads and writes.

    The map is a collection of non-overlapping :class:`MemoryRegion`
    objects.  Reads and writes are routed to the containing region and
    checked against its policy under the caller's
    :class:`AccessContext`.
    """

    def __init__(self, regions: Optional[Iterable[MemoryRegion]] = None) -> None:
        self._regions: Dict[str, MemoryRegion] = {}
        self.violations: list[tuple[str, AccessContext, str]] = []
        for region in regions or ():
            self.add_region(region)

    def add_region(self, region: MemoryRegion) -> MemoryRegion:
        """Add a region; rejects duplicate names and overlapping ranges."""
        if region.name in self._regions:
            raise ValueError(f"duplicate region name {region.name!r}")
        for existing in self._regions.values():
            if region.overlaps(existing):
                raise ValueError(
                    f"region {region.name!r} overlaps {existing.name!r}")
        self._regions[region.name] = region
        return region

    def region(self, name: str) -> MemoryRegion:
        """Look up a region by name."""
        try:
            return self._regions[name]
        except KeyError as exc:
            raise KeyError(f"no region named {name!r}") from exc

    def regions(self) -> list[MemoryRegion]:
        """All regions, sorted by base address."""
        return sorted(self._regions.values(), key=lambda region: region.base)

    def total_size(self) -> int:
        """Sum of all region sizes in bytes."""
        return sum(region.size for region in self._regions.values())

    def _find(self, address: int, length: int) -> MemoryRegion:
        for region in self._regions.values():
            if region.contains(address, length):
                return region
        raise AccessViolation(
            f"access to unmapped address 0x{address:x} (+{length})")

    def read(self, address: int, length: int,
             context: AccessContext = AccessContext.NORMAL) -> bytes:
        """Read ``length`` bytes starting at ``address``."""
        region = self._find(address, length)
        if context not in region.policy.readable:
            self.violations.append((region.name, context, "read"))
            raise AccessViolation(
                f"{context.value} context may not read region {region.name!r}")
        offset = address - region.base
        return bytes(region.data[offset:offset + length])

    def write(self, address: int, payload: bytes,
              context: AccessContext = AccessContext.NORMAL) -> None:
        """Write ``payload`` starting at ``address``."""
        region = self._find(address, len(payload))
        if context not in region.policy.writable:
            self.violations.append((region.name, context, "write"))
            raise AccessViolation(
                f"{context.value} context may not write region {region.name!r}")
        offset = address - region.base
        region.data[offset:offset + len(payload)] = payload

    def read_region(self, name: str,
                    context: AccessContext = AccessContext.NORMAL) -> bytes:
        """Read an entire region by name."""
        region = self.region(name)
        return self.read(region.base, region.size, context)

    def write_region(self, name: str, payload: bytes,
                     context: AccessContext = AccessContext.NORMAL,
                     offset: int = 0) -> None:
        """Write into a region by name at the given offset."""
        region = self.region(name)
        if offset < 0 or offset + len(payload) > region.size:
            raise ValueError(
                f"write of {len(payload)} bytes at offset {offset} exceeds "
                f"region {name!r} of size {region.size}")
        self.write(region.base + offset, payload, context)
