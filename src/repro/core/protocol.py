"""Protocol messages for collection and on-demand attestation.

Two exchanges from the paper:

* the ERASMUS collection protocol (Figure 2): the verifier sends
  ``collect k``; the prover answers with its ``k`` latest stored
  measurements — no cryptography, no state change, no request
  authentication (there is nothing to DoS);
* the ERASMUS+OD protocol (Figure 4): the request additionally carries a
  fresh timestamp ``t_req`` and ``MAC_K(t_req)``; the prover
  authenticates it, computes one on-demand measurement ``M_0`` and
  returns it together with the stored history.

Messages have a canonical byte encoding so they can travel over the
simulated network (:mod:`repro.net`) and so message sizes are realistic
for the swarm experiments.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.arch.base import encode_timestamp
from repro.core.measurement import Buffer, Measurement, MeasurementDecodeError

_COLLECT_HEADER = struct.Struct(">BI")          # message type, k
_ONDEMAND_HEADER = struct.Struct(">BIQH")       # type, k, t_req_us, tag length
_RESPONSE_HEADER = struct.Struct(">BH")         # message type, record count
_RECORD_LENGTH = struct.Struct(">H")

_TYPE_COLLECT_REQUEST = 1
_TYPE_COLLECT_RESPONSE = 2
_TYPE_ONDEMAND_REQUEST = 3
_TYPE_ONDEMAND_RESPONSE = 4

#: Upper bound on ``k``: a response cannot carry more records than its
#: 16-bit record counter can describe, so any larger request is either a
#: bug or an attempted resource-exhaustion probe and is rejected at the
#: message layer.
MAX_K = 0xFFFF


class ProtocolDecodeError(Exception):
    """A protocol message could not be decoded."""


def _check_k(k: int) -> None:
    if k < 0:
        raise ValueError("k must be non-negative")
    if k > MAX_K:
        raise ValueError(f"k must not exceed {MAX_K}")


@dataclass(frozen=True)
class CollectRequest:
    """Verifier -> prover: "collect k" (Figure 2)."""

    k: int

    def encode(self) -> bytes:
        """Serialize to the wire format."""
        _check_k(self.k)
        return _COLLECT_HEADER.pack(_TYPE_COLLECT_REQUEST, self.k)

    @classmethod
    def decode(cls, payload: bytes) -> "CollectRequest":
        """Parse the wire format."""
        try:
            message_type, k = _COLLECT_HEADER.unpack(payload)
        except struct.error as exc:
            raise ProtocolDecodeError("malformed collect request") from exc
        if message_type != _TYPE_COLLECT_REQUEST:
            raise ProtocolDecodeError("not a collect request")
        if k > MAX_K:
            raise ProtocolDecodeError(f"oversized k ({k} > {MAX_K})")
        return cls(k=k)


def _measurement_parts(measurements: List[Measurement],
                       parts: List[bytes]) -> List[bytes]:
    """Append length-prefixed record buffers to a flat writev-style list."""
    for measurement in measurements:
        record = measurement.encode_parts()
        parts.append(_RECORD_LENGTH.pack(sum(len(p) for p in record)))
        parts.extend(record)
    return parts


def _decode_measurements(payload: Buffer, count: int, *,
                         copy: bool = False) -> List[Measurement]:
    measurements: List[Measurement] = []
    view = memoryview(payload).toreadonly()
    offset = 0
    for _ in range(count):
        if offset + _RECORD_LENGTH.size > len(view):
            raise ProtocolDecodeError("truncated measurement list")
        (length,) = _RECORD_LENGTH.unpack_from(view, offset)
        offset += _RECORD_LENGTH.size
        if offset + length > len(view):
            raise ProtocolDecodeError("truncated measurement record")
        record = view[offset:offset + length]
        offset += length
        try:
            measurements.append(Measurement.decode(record, copy=copy))
        except MeasurementDecodeError as exc:
            raise ProtocolDecodeError(str(exc)) from exc
    if offset != len(view):
        raise ProtocolDecodeError("trailing bytes after measurement list")
    return measurements


@dataclass(frozen=True)
class CollectResponse:
    """Prover -> verifier: the k latest stored measurements, newest first."""

    measurements: List[Measurement] = field(default_factory=list)

    def encode_parts(self) -> List[bytes]:
        """The wire encoding as a writev-style list of buffers."""
        header = _RESPONSE_HEADER.pack(_TYPE_COLLECT_RESPONSE,
                                       len(self.measurements))
        return _measurement_parts(self.measurements, [header])

    def encode(self) -> bytes:
        """Serialize to the wire format."""
        return b"".join(self.encode_parts())

    @classmethod
    def decode(cls, payload: Buffer, *,
               copy: bool = False) -> "CollectResponse":
        """Parse the wire format.

        Decoded records view ``payload`` directly by default; pass
        ``copy=True`` to materialize independent ``bytes`` fields when
        the records must outlive the receive buffer.
        """
        if len(payload) < _RESPONSE_HEADER.size:
            raise ProtocolDecodeError("malformed collect response")
        message_type, count = _RESPONSE_HEADER.unpack_from(payload)
        if message_type != _TYPE_COLLECT_RESPONSE:
            raise ProtocolDecodeError("not a collect response")
        measurements = _decode_measurements(
            memoryview(payload)[_RESPONSE_HEADER.size:], count, copy=copy)
        return cls(measurements=measurements)

    @property
    def size_bytes(self) -> int:
        """Encoded size of the response."""
        return len(self.encode())


@dataclass(frozen=True)
class OnDemandRequest:
    """Verifier -> prover for ERASMUS+OD: ``t_req, k, MAC_K(t_req)``."""

    request_time: float
    k: int
    tag: bytes

    def authenticated_payload(self) -> bytes:
        """Bytes covered by the request MAC (the canonical timestamp)."""
        return encode_timestamp(self.request_time)

    def encode(self) -> bytes:
        """Serialize to the wire format."""
        _check_k(self.k)
        header = _ONDEMAND_HEADER.pack(
            _TYPE_ONDEMAND_REQUEST, self.k,
            int(round(self.request_time * 1_000_000)), len(self.tag))
        return header + self.tag

    @classmethod
    def decode(cls, payload: Buffer) -> "OnDemandRequest":
        """Parse the wire format."""
        if len(payload) < _ONDEMAND_HEADER.size:
            raise ProtocolDecodeError("malformed on-demand request")
        message_type, k, time_us, tag_length = _ONDEMAND_HEADER.unpack_from(
            payload)
        if message_type != _TYPE_ONDEMAND_REQUEST:
            raise ProtocolDecodeError("not an on-demand request")
        if k > MAX_K:
            raise ProtocolDecodeError(f"oversized k ({k} > {MAX_K})")
        # Requests are tiny and the tag is retained for verification, so
        # a copy is the right call here (views would pin the whole frame).
        tag = bytes(memoryview(payload)[_ONDEMAND_HEADER.size:])
        if len(tag) != tag_length:
            raise ProtocolDecodeError("on-demand request tag length mismatch")
        return cls(request_time=time_us / 1_000_000, k=k, tag=tag)


@dataclass(frozen=True)
class OnDemandResponse:
    """Prover -> verifier for ERASMUS+OD: fresh ``M_0`` plus the history.

    ``fresh`` is ``None`` when the prover refused the request (failed
    authentication); the history list is then empty as well.
    """

    fresh: Optional[Measurement]
    measurements: List[Measurement] = field(default_factory=list)

    def encode_parts(self) -> List[bytes]:
        """The wire encoding as a writev-style list of buffers."""
        records = ([self.fresh] if self.fresh is not None else []) + \
            list(self.measurements)
        header = _RESPONSE_HEADER.pack(_TYPE_ONDEMAND_RESPONSE, len(records))
        flag = b"\x01" if self.fresh is not None else b"\x00"
        return _measurement_parts(records, [header, flag])

    def encode(self) -> bytes:
        """Serialize to the wire format."""
        return b"".join(self.encode_parts())

    @classmethod
    def decode(cls, payload: Buffer, *,
               copy: bool = False) -> "OnDemandResponse":
        """Parse the wire format (records view ``payload`` unless ``copy``)."""
        minimum = _RESPONSE_HEADER.size + 1
        if len(payload) < minimum:
            raise ProtocolDecodeError("malformed on-demand response")
        message_type, count = _RESPONSE_HEADER.unpack_from(payload)
        if message_type != _TYPE_ONDEMAND_RESPONSE:
            raise ProtocolDecodeError("not an on-demand response")
        has_fresh = payload[_RESPONSE_HEADER.size] == 1
        records = _decode_measurements(
            memoryview(payload)[minimum:], count, copy=copy)
        if has_fresh:
            if not records:
                raise ProtocolDecodeError("fresh measurement flagged but absent")
            return cls(fresh=records[0], measurements=records[1:])
        return cls(fresh=None, measurements=records)


AnyRequest = Union[CollectRequest, OnDemandRequest]
AnyResponse = Union[CollectResponse, OnDemandResponse]

_REQUEST_DECODERS = {
    _TYPE_COLLECT_REQUEST: CollectRequest.decode,
    _TYPE_ONDEMAND_REQUEST: OnDemandRequest.decode,
}
_RESPONSE_DECODERS = {
    _TYPE_COLLECT_RESPONSE: CollectResponse.decode,
    _TYPE_ONDEMAND_RESPONSE: OnDemandResponse.decode,
}


def decode_request(payload: Buffer) -> AnyRequest:
    """Decode a verifier-to-prover message by its type tag.

    Transports use this to dispatch incoming requests without knowing in
    advance whether a collection is plain or on-demand.
    """
    if not len(payload):
        raise ProtocolDecodeError("empty request")
    try:
        decoder = _REQUEST_DECODERS[payload[0]]
    except KeyError as exc:
        raise ProtocolDecodeError(
            f"unknown request type {payload[0]}") from exc
    return decoder(payload)


def decode_response(payload: Buffer, *, copy: bool = False) -> AnyResponse:
    """Decode a prover-to-verifier message by its type tag.

    Decoded measurement fields are zero-copy views over ``payload`` by
    default; ``copy=True`` materializes independent ``bytes`` for callers
    that retain records after the buffer is recycled.
    """
    if not len(payload):
        raise ProtocolDecodeError("empty response")
    try:
        decoder = _RESPONSE_DECODERS[payload[0]]
    except KeyError as exc:
        raise ProtocolDecodeError(
            f"unknown response type {payload[0]}") from exc
    return decoder(payload, copy=copy)
