"""The Observability facade, ObservedStore, and the null default."""

import pytest

from repro.core.verification import DeviceStatus, VerificationReport
from repro.fleet.sinks import RoundStats
from repro.obs import (
    NULL_OBSERVABILITY,
    LostBudgetRule,
    NullObservability,
    Observability,
    ObservedStore,
)
from repro.store import MemoryStore


def report(status=DeviceStatus.HEALTHY):
    return VerificationReport(device_id="dev", collection_time=0.0,
                              status=status)


def test_report_committed_counts_by_status():
    obs = Observability()
    obs.report_committed(report())
    obs.report_committed(report())
    obs.report_committed(report(DeviceStatus.NO_DATA))
    assert obs.reports_total.value("healthy") == 2
    assert obs.reports_total.value("no_data") == 1


def test_round_finished_folds_stats():
    obs = Observability()
    obs.round_finished(RoundStats(requests_sent=10, responses_received=8,
                                  responses_lost=2,
                                  stale_responses_rejected=1,
                                  wall_seconds=0.5))
    assert obs.rounds_total.value() == 1
    assert obs.requests_sent_total.value() == 10
    assert obs.responses_lost_total.value() == 2
    assert obs.stale_responses_total.value() == 1
    assert obs.round_wall_seconds.labels().count == 1


def test_cell_finished_folds_campaign_counters():
    obs = Observability()
    obs.cell_finished(1.5, skipped_rounds=2, recovered_rounds=1)
    obs.cell_finished(0.5)
    assert obs.campaign_cells_total.value() == 2
    assert obs.campaign_rounds_skipped_total.value() == 2
    assert obs.campaign_rounds_recovered_total.value() == 1


def test_observed_store_times_writes_without_changing_them():
    obs = Observability()
    store = ObservedStore(MemoryStore(), obs)
    r = report()
    store.append_report(r)
    store.append_report(r)
    store.checkpoint(None, {}, rounds_completed=0)
    assert obs.store_ops.value("append_report") == 2
    assert obs.store_ops.value("checkpoint") == 1
    assert obs.store_op_seconds.labels("append_report").count == 2
    # The wrapped backend received the writes unmodified.
    assert [row["device_id"] for row in store.inner.device_history("dev")] \
        == ["dev", "dev"]
    assert store.device_history("dev") == store.inner.device_history("dev")


def test_slo_violations_are_counted_per_rule():
    fired = []
    obs = Observability(slo_rules=[LostBudgetRule(0)],
                        on_violation=[fired.append])
    sink = obs.health_sink()
    assert sink is not None
    sink.emit(report(DeviceStatus.NO_DATA))
    assert obs.slo_violations_total.value("lost_budget") == 1
    assert len(fired) == 1
    assert obs.violations == [fired[0]]


def test_no_rules_means_no_sink():
    obs = Observability()
    assert obs.health_sink() is None
    assert obs.violations == []


def test_attach_transport_is_idempotent():
    class _Network:
        def __init__(self):
            self.on_packet_admitted = []
            self.on_packet_settled = []

    class _Transport:
        def __init__(self, network, inner=None):
            self.network = network
            if inner is not None:
                self.inner = inner

    obs = Observability()
    network = _Network()
    transport = _Transport(network)
    obs.attach_transport(transport)
    obs.attach_transport(transport)  # same network: not double-hooked
    obs.attach_transport(_Transport(None, inner=transport))  # via .inner
    assert len(network.on_packet_admitted) == 1
    assert len(network.on_packet_settled) == 1
    network.on_packet_admitted[0]("packet")
    network.on_packet_settled[0]("packet", "delivered")
    network.on_packet_settled[0]("packet", "dropped")
    assert obs.packets_admitted_total.value() == 1
    assert obs.packets_settled_total.value("delivered") == 1
    assert obs.packets_settled_total.value("dropped") == 1


def test_serve_returns_one_server_until_closed():
    obs = Observability()
    server = obs.serve()
    try:
        assert obs.serve() is server
    finally:
        obs.close()
    second = obs.serve()  # a closed server is replaced
    try:
        assert second is not server
    finally:
        obs.close()


def test_null_observability_is_inert():
    null = NullObservability()
    assert not null.enabled
    assert not NULL_OBSERVABILITY.enabled
    null.bind_engine(None)
    null.attach_transport(None)
    store = MemoryStore()
    assert null.wrap_store(store) is store
    assert null.health_sink() is None
    assert null.violations == []
    with null.trace_round(1) as span:
        assert span is None
    with null.trace_shard(None, 0) as span:
        assert span is None
    null.record_device_verify(None, "dev", "healthy")
    null.report_committed(report())
    null.round_finished(RoundStats())
    null.cell_finished(0.0)
    assert null.render_metrics() == ""
    assert null.write_trace("/nonexistent/never-written") == 0
    null.close()
    with pytest.raises(RuntimeError):
        null.serve()


def test_trace_devices_false_keeps_round_and_shard_spans_only():
    obs = Observability(trace_devices=False)
    with obs.trace_round(1) as round_span:
        with obs.trace_shard(round_span, 0) as shard_span:
            obs.record_device_verify(shard_span, "dev", "healthy")
    kinds = [row["kind"] for row in obs.tracer.export_rows()]
    assert kinds == ["round", "shard"]


# ----------------------------------------------------------------------
# v2: recent-health instruments, per-cell children, round listeners
# ----------------------------------------------------------------------

class _FakeEngine:
    def __init__(self):
        self.now = 0.0


def test_recent_instruments_track_the_window():
    obs = Observability(recent_window=100.0)
    engine = _FakeEngine()
    obs.bind_engine(engine)
    obs.report_committed(report())
    obs.round_finished(RoundStats(requests_sent=5, responses_lost=2))
    assert obs.reports_recent.value("healthy") == 1
    assert obs.rounds_recent.value() == 1
    assert obs.responses_lost_recent.value() == 2
    assert obs.round_activity.value() == pytest.approx(1.0)
    engine.now = 100.0  # one window / one half-life later
    assert obs.reports_recent.value("healthy") == 0
    assert obs.rounds_recent.value() == 0
    assert obs.round_activity.value() == pytest.approx(0.5)
    # Cumulative families are untouched by the aging.
    assert obs.reports_total.value("healthy") == 1
    assert obs.rounds_total.value() == 1


def test_summary_lines_appear_in_the_service_exposition():
    obs = Observability()
    obs.device_verify_seconds.labels("0").observe(0.001)
    text = obs.render_metrics()
    assert "# TYPE repro_device_verify_seconds_summary gauge" in text
    assert 'quantile="0.5"' in text


def test_for_cell_children_are_deterministic_and_disjoint():
    parent = Observability(seed=99)
    a1 = parent.for_cell("a")
    a2 = Observability(seed=99).for_cell("a")
    b = parent.for_cell("b")
    assert a1.tracer.seed == a2.tracer.seed  # same parent seed + label
    assert a1.tracer.seed != b.tracer.seed
    assert a1.tracer.seed != parent.tracer.seed
    assert a1.cell == "a"
    assert a1.registry is not parent.registry
    assert a1.tracer is not parent.tracer
    # Same path in two cells → different span ids.
    with a1.trace_round(0) as span_a, b.trace_round(0) as span_b:
        pass
    row_a = a1.tracer.export_rows()[0]
    row_b = b.tracer.export_rows()[0]
    assert row_a["path"] == row_b["path"]
    assert row_a["span_id"] != row_b["span_id"]


def test_absorb_cell_lands_in_the_cell_namespace():
    parent = Observability()
    parent.rounds_total.inc(10)
    child = parent.for_cell("c1")
    child.rounds_total.inc(3)
    child.report_committed(report())
    parent.absorb_cell(child)
    text = parent.render_metrics()
    assert "repro_rounds_total 10" in text
    assert 'repro_cell_rounds_total{cell="c1"} 3' in text
    assert 'repro_cell_reports_total{status="healthy",cell="c1"} 1' in text


def test_round_listeners_fire_after_counters():
    obs = Observability()
    seen = []
    obs.add_round_listener(
        lambda stats: seen.append((stats.requests_sent,
                                   obs.rounds_total.value())))
    stats = RoundStats(requests_sent=4)
    obs.round_finished(stats)
    assert seen == [(4, 1.0)]  # the counter was already folded in
    # The listener never mutated the stats object.
    assert stats.requests_sent == 4


def test_remote_write_round_trip_through_the_service():
    obs = Observability()
    posted = []
    exporter = obs.remote_write("http://unused.invalid/w",
                                post=posted.append)
    obs.round_finished(RoundStats(requests_sent=3, responses_lost=1,
                                  wall_seconds=0.25))
    assert exporter.flush(5.0)
    (payload,) = posted
    assert payload["round"] == 1
    assert payload["stats"]["responses_lost"] == 1
    assert "repro_rounds_total 1" in payload["metrics"]
    assert payload["slo"] == []
    # The exporter's self-metrics live in the service registry...
    assert "repro_remote_write_pushes_total" in obs.render_metrics()
    # ...and close() stops the exporter's worker.
    obs.close()
    assert not exporter._thread.is_alive()


def test_null_observability_v2_surface():
    null = NullObservability()
    null.add_round_listener(lambda stats: None)
    assert null.for_cell("x") is null
    null.absorb_cell(null)
    assert null.cell is None
    with pytest.raises(RuntimeError):
        null.remote_write("http://unused.invalid/")
    with pytest.raises(RuntimeError):
        null.report()
