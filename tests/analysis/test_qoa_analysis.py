"""Tests for QoA statistics and the ERASMUS vs on-demand comparison."""

import pytest

from repro.analysis import (
    collection_freshness,
    compare_erasmus_vs_ondemand,
    detection_curve,
)
from repro.analysis.qoa_analysis import freshness_statistics


def test_collection_freshness_values():
    measurements = [10.0, 20.0, 30.0, 40.0]
    collections = [25.0, 45.0]
    assert collection_freshness(measurements, collections) == [5.0, 5.0]
    # A collection before any measurement yields no sample.
    assert collection_freshness([50.0], [10.0]) == []


def test_freshness_statistics_match_prediction():
    stats = freshness_statistics(measurement_interval=60.0,
                                 collection_interval=601.0,
                                 horizon=60_000.0)
    assert stats["predicted_mean"] == pytest.approx(30.0)
    assert 0.0 <= stats["observed_mean"] <= 60.0
    assert stats["observed_max"] <= 60.0


def test_detection_curve_is_monotone_and_capped():
    curve = detection_curve(60.0, [6.0, 30.0, 60.0, 120.0])
    assert curve[6.0] == pytest.approx(0.1)
    assert curve[60.0] == 1.0
    assert curve[120.0] == 1.0
    values = [curve[d] for d in sorted(curve)]
    assert values == sorted(values)


def test_compare_erasmus_vs_ondemand_structure():
    comparison = compare_erasmus_vs_ondemand(
        measurement_interval=60.0, collection_interval=600.0,
        mean_dwell=45.0, horizon=100_000.0, seed=1)
    assert comparison.erasmus_detection_rate >= \
        comparison.on_demand_detection_rate
    assert comparison.detection_advantage >= 0.0
    assert comparison.erasmus.measurements_per_collection == 10
    assert comparison.on_demand.on_demand_only


def test_same_seed_gives_matched_campaigns():
    first = compare_erasmus_vs_ondemand(60.0, 600.0, mean_dwell=30.0,
                                        horizon=50_000.0, seed=3)
    second = compare_erasmus_vs_ondemand(60.0, 600.0, mean_dwell=30.0,
                                         horizon=50_000.0, seed=3)
    assert first.erasmus_detection_rate == second.erasmus_detection_rate
    assert first.on_demand_detection_rate == second.on_demand_detection_rate
