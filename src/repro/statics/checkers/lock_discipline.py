"""Rule ``lock-discipline``: shared stores stay behind their lock.

Sharded fleet verifiers funnel every concurrent :class:`StateStore`
access through ``_LockedStore`` — the JSONL stream and the SQLite
connection are single-writer.  A class that builds a ``_LockedStore``
and then calls store methods on the *raw* store anyway re-opens the
race the wrapper exists to close.  Second hazard: blocking while
holding a lock (a ``sleep``, a socket round-trip, a subprocess) turns
a microsecond critical section into a convoy for every shard worker.

Flagged:

* inside any class that constructs ``_LockedStore(raw)``: calls to
  StateStore methods on ``raw`` or on a ``self.<attr>`` bound to it
  (``close`` is exempt — teardown is single-threaded by contract);
* calls made lexically inside a ``with <something named *lock*>:``
  block that are known to block: ``time.sleep``, socket send/recv/
  accept/connect, ``subprocess.*``, ``select.select``, and
  ``.join()`` on thread/process-named objects.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.statics.engine import (
    Checker, FileContext, Finding, dotted_chain, split_name, terminal_name,
)

STORE_METHODS = {
    "save_enrollment", "append_report", "checkpoint", "restore_state",
    "has_enrollment", "device_history", "state_rows", "flush",
}
_BLOCKING_SOCKET_OPS = {
    "recv", "recv_bytes", "recv_into", "recvfrom", "send", "send_bytes",
    "sendall", "sendto", "accept", "connect",
}
_THREADISH_PARTS = {"thread", "threads", "process", "proc", "worker",
                    "reader", "pool"}


def _is_lockish(node: ast.AST) -> bool:
    name = terminal_name(node)
    return name is not None and "lock" in name.lower()


class _WithLockVisitor(ast.NodeVisitor):
    """Collect blocking calls lexically under a ``with *lock*:``."""

    def __init__(self) -> None:
        self.lock_depth = 0
        self.hits: List[ast.Call] = []

    def visit_With(self, node: ast.With) -> None:
        locked = any(_is_lockish(item.context_expr) for item in node.items)
        if locked:
            self.lock_depth += 1
        self.generic_visit(node)
        if locked:
            self.lock_depth -= 1

    visit_AsyncWith = visit_With

    def visit_Call(self, node: ast.Call) -> None:
        if self.lock_depth > 0 and self._blocks(node):
            self.hits.append(node)
        self.generic_visit(node)

    @staticmethod
    def _blocks(node: ast.Call) -> bool:
        chain = dotted_chain(node.func)
        if not chain:
            return False
        if chain == ["sleep"] or tuple(chain[-2:]) == ("time", "sleep"):
            return True
        if chain[0] == "subprocess" and len(chain) > 1:
            return True
        if tuple(chain[-2:]) == ("select", "select"):
            return True
        if len(chain) >= 2 and chain[-1] in _BLOCKING_SOCKET_OPS:
            return True
        if len(chain) >= 2 and chain[-1] == "join" \
                and _THREADISH_PARTS & set(split_name(chain[-2])):
            return True
        return False


def _raw_store_names(cls: ast.ClassDef) -> Optional[Set[str]]:
    """Names aliasing the unwrapped store in a _LockedStore-using class.

    Returns ``None`` when the class never constructs a ``_LockedStore``
    (the rule does not apply), otherwise the set of raw names: the
    constructor argument plus any ``self.<attr>`` it was assigned to.
    """
    raw: Set[str] = set()
    wraps = False
    assigns: Dict[str, Set[str]] = {}
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and isinstance(node.value,
                                                       ast.Name):
            for target in node.targets:
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    assigns.setdefault(node.value.id,
                                       set()).add(target.attr)
        if isinstance(node, ast.Call) \
                and terminal_name(node.func) == "_LockedStore" \
                and node.args and isinstance(node.args[0], ast.Name):
            wraps = True
            raw.add(node.args[0].id)
    if not wraps:
        return None
    for source in list(raw):
        raw.update(assigns.get(source, ()))
    return raw


class LockDisciplineChecker(Checker):
    rule = "lock-discipline"
    description = ("flags raw StateStore calls that bypass _LockedStore "
                   "and blocking calls made while holding a lock")
    invariant = ("shard workers and their parent reach the shared "
                 "single-writer store only through _LockedStore, and "
                 "critical sections never block on sleeps, sockets or "
                 "subprocesses")
    applies_to_tests = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            raw = _raw_store_names(node)
            if raw is None:
                continue
            for call in ast.walk(node):
                if not isinstance(call, ast.Call) \
                        or not isinstance(call.func, ast.Attribute) \
                        or call.func.attr not in STORE_METHODS:
                    continue
                base = call.func.value
                is_raw = (isinstance(base, ast.Name) and base.id in raw) \
                    or (isinstance(base, ast.Attribute)
                        and isinstance(base.value, ast.Name)
                        and base.value.id == "self"
                        and base.attr in raw)
                if is_raw:
                    yield ctx.finding(
                        self.rule, call,
                        f".{call.func.attr}() called on the raw store "
                        f"in {node.name}, bypassing _LockedStore; route "
                        f"through the locked wrapper")
        visitor = _WithLockVisitor()
        visitor.visit(ctx.tree)
        for call in visitor.hits:
            chain = ".".join(dotted_chain(call.func))
            yield ctx.finding(
                self.rule, call,
                f"blocking call {chain}() while holding a lock; move it "
                f"outside the critical section")
