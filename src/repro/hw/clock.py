"""Reliable Read-Only Clock (RROC) models.

The RROC is the one hardware feature ERASMUS leans on beyond SMART:
measurement timestamps must come from a clock malware cannot modify,
otherwise the clock-rewind attack of Section 3.4 becomes possible.

Two constructions from the paper are modelled:

* :class:`ReliableClock` — the SMART+ realization: a 64-bit register
  incremented every cycle whose write-enable wire is physically removed.
* :class:`SoftwareClock` — the HYDRA realization (after Brasser et al.):
  a short, wrapping hardware counter (the i.MX6 GPT) combined with
  software-maintained high-order bits updated on wrap-around interrupts,
  where only the attestation process may write the high bits.
"""

from __future__ import annotations

from dataclasses import dataclass


class ClockTamperError(Exception):
    """Raised when software attempts to modify a read-only clock."""


class ReliableClock:
    """Hardware RROC: a monotonically increasing 64-bit cycle counter.

    The clock is driven by the simulation: :meth:`advance_to` moves it
    to an absolute virtual time (seconds); reads convert the internal
    cycle count back to seconds.  Any attempt to set the value raises
    :class:`ClockTamperError`, mirroring the removed write-enable wire.
    """

    def __init__(self, frequency_hz: float = 8_000_000.0) -> None:
        if frequency_hz <= 0:
            raise ValueError("clock frequency must be positive")
        self.frequency_hz = frequency_hz
        self._cycles = 0

    @property
    def cycles(self) -> int:
        """Current 64-bit cycle count."""
        return self._cycles & 0xFFFFFFFFFFFFFFFF

    def read(self) -> float:
        """Current time in seconds since device boot."""
        return self._cycles / self.frequency_hz

    def advance_to(self, time_seconds: float) -> None:
        """Advance the counter to the given absolute time (never backwards)."""
        target = int(round(time_seconds * self.frequency_hz))
        if target < self._cycles:
            raise ClockTamperError(
                "RROC cannot move backwards (attempted rewind)")
        self._cycles = target

    def advance(self, delta_seconds: float) -> None:
        """Advance the counter by a positive number of seconds."""
        if delta_seconds < 0:
            raise ClockTamperError("RROC cannot move backwards")
        self._cycles += int(round(delta_seconds * self.frequency_hz))

    def write(self, _value: int) -> None:
        """Model of a software write to the counter: always rejected."""
        raise ClockTamperError(
            "RROC write-enable is hard-wired off; the counter is read-only")


@dataclass
class WrappingCounter:
    """A hardware counter with a limited width that wraps around.

    Models the i.MX6 General Purpose Timer used by HYDRA's software
    clock.  ``width_bits`` of 32 at ~66 MHz wraps roughly every 65 s,
    which is why HYDRA needs the software-maintained high bits.
    """

    frequency_hz: float
    width_bits: int = 32

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("counter frequency must be positive")
        if self.width_bits <= 0:
            raise ValueError("counter width must be positive")
        self._modulus = 1 << self.width_bits
        self._total_cycles = 0

    @property
    def modulus(self) -> int:
        """Number of distinct counter values before wrap-around."""
        return self._modulus

    def value(self) -> int:
        """Current (wrapped) counter value."""
        return self._total_cycles % self._modulus

    def wrap_count(self) -> int:
        """Number of complete wrap-arounds since boot."""
        return self._total_cycles // self._modulus

    def advance_to(self, time_seconds: float) -> int:
        """Advance to an absolute time; returns the number of new wraps."""
        target = int(round(time_seconds * self.frequency_hz))
        if target < self._total_cycles:
            raise ClockTamperError("hardware counter cannot move backwards")
        previous_wraps = self.wrap_count()
        self._total_cycles = target
        return self.wrap_count() - previous_wraps


class SoftwareClock:
    """HYDRA's RROC: wrapping GPT counter + attestation-owned high bits.

    The high-order bits are stored in PrAtt-private memory; only the
    attestation process (``trusted=True`` callers) may update them, which
    happens from the wrap-around interrupt handler.  Reads combine the
    high bits with the live hardware counter.
    """

    def __init__(self, counter: WrappingCounter) -> None:
        self._counter = counter
        self._high_bits = 0

    @property
    def frequency_hz(self) -> float:
        """Frequency of the underlying hardware counter."""
        return self._counter.frequency_hz

    def advance_to(self, time_seconds: float, trusted: bool = True) -> None:
        """Advance the hardware counter; handle wraps in the trusted handler.

        ``trusted=False`` models an environment where the wrap interrupt
        is not serviced by PrAtt — the high bits are then not updated and
        the clock loses time, which the verifier can detect from
        non-monotonic / stale timestamps.
        """
        wraps = self._counter.advance_to(time_seconds)
        if trusted and wraps:
            self._high_bits += wraps

    def set_high_bits(self, value: int, trusted: bool) -> None:
        """Explicit write to the high bits; only the attestation process may."""
        if not trusted:
            raise ClockTamperError(
                "only the attestation process may write the RROC high bits")
        if value < self._high_bits:
            raise ClockTamperError("RROC high bits cannot move backwards")
        self._high_bits = value

    def read(self) -> float:
        """Current time in seconds, combining high bits and live counter."""
        total_cycles = self._high_bits * self._counter.modulus + \
            self._counter.value()
        return total_cycles / self._counter.frequency_hz
