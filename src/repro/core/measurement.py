"""The measurement record ``M_t = <t, H(mem_t), MAC_K(t, H(mem_t))>``.

Measurements are produced by the security architecture
(:meth:`repro.arch.SecurityArchitecture.perform_measurement`), stored in
the prover's insecure rolling buffer and later shipped to the verifier
unencrypted (they are authenticated by the MAC and contain no secrets;
Section 3.2).  This module defines the record and a compact, canonical
wire encoding used both for buffer storage and for network transfer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Union

from repro.arch.base import MeasurementOutput, encode_timestamp

_HEADER = struct.Struct(">QHH")  # timestamp_us, digest_len, tag_len

#: Anything the codec accepts as an encoded record: decoded fields are
#: read-only :class:`memoryview` slices over the input buffer by
#: default (zero-copy), which hash and compare equal to the ``bytes``
#: they view, so digests stay usable as set members and MAC inputs.
Buffer = Union[bytes, bytearray, memoryview]


class MeasurementDecodeError(Exception):
    """A byte string could not be decoded into a measurement record."""


@dataclass(frozen=True)
class Measurement:
    """One self-measurement record.

    ``timestamp`` is the RROC value at measurement time (seconds),
    ``digest`` is ``H(mem_t)`` and ``tag`` is ``MAC_K(t, H(mem_t))``.
    ``duration`` (not transmitted) records the modelled run-time of the
    measurement on the prover, used by availability experiments.
    """

    timestamp: float
    digest: bytes
    tag: bytes
    duration: float = 0.0

    @classmethod
    def from_output(cls, output: MeasurementOutput) -> "Measurement":
        """Build a record from the architecture's raw measurement output."""
        return cls(timestamp=output.timestamp, digest=output.digest,
                   tag=output.tag, duration=output.duration)

    def authenticated_payload(self) -> bytes:
        """The bytes the MAC covers: canonical timestamp followed by digest."""
        # join() accepts buffer views, so a zero-copy digest works here too.
        return b"".join((encode_timestamp(self.timestamp), self.digest))

    def encode_parts(self) -> List[bytes]:
        """The wire encoding as a writev-style list of buffers.

        Callers assembling larger messages extend one flat parts list and
        join once at the end instead of concatenating per record.
        """
        header = _HEADER.pack(int(round(self.timestamp * 1_000_000)),
                              len(self.digest), len(self.tag))
        return [header, self.digest, self.tag]

    def encode(self) -> bytes:
        """Serialize to the canonical wire format."""
        return b"".join(self.encode_parts())

    @classmethod
    def decode(cls, payload: Buffer, *, copy: bool = False) -> "Measurement":
        """Parse the canonical wire format back into a record.

        With ``copy=False`` (the default) ``digest`` and ``tag`` are
        read-only views into ``payload`` — no per-record copies.  Pass
        ``copy=True`` when the record outlives the buffer it came from.
        """
        if len(payload) < _HEADER.size:
            raise MeasurementDecodeError("measurement record truncated")
        timestamp_us, digest_len, tag_len = _HEADER.unpack_from(payload)
        expected = _HEADER.size + digest_len + tag_len
        if len(payload) != expected:
            raise MeasurementDecodeError(
                f"measurement record has {len(payload)} bytes, "
                f"expected {expected}")
        view = memoryview(payload).toreadonly()
        digest = view[_HEADER.size:_HEADER.size + digest_len]
        tag = view[_HEADER.size + digest_len:]
        if copy:
            digest, tag = bytes(digest), bytes(tag)
        return cls(timestamp=timestamp_us / 1_000_000, digest=digest, tag=tag)

    @property
    def size_bytes(self) -> int:
        """Encoded size of the record in bytes."""
        return _HEADER.size + len(self.digest) + len(self.tag)

    def with_timestamp(self, timestamp: float) -> "Measurement":
        """Copy with a different timestamp (used by tampering adversaries).

        The tag is *not* recomputed — malware cannot forge MACs — so the
        result will fail verification, which is exactly the point.
        """
        return Measurement(timestamp=timestamp, digest=self.digest,
                           tag=self.tag, duration=self.duration)
