"""Tests for the random-waypoint mobility model."""

import pytest

from repro.net.mobility import RandomWaypointMobility


NAMES = [f"dev{i}" for i in range(12)]


def test_static_swarm_topology_is_stable():
    mobility = RandomWaypointMobility(NAMES, area_size=50.0, radio_range=30.0,
                                      speed=0.0, seed=1)
    first = {(l.node_a, l.node_b) for l in mobility.links_at(0.0)}
    later = {(l.node_a, l.node_b) for l in mobility.links_at(100.0)}
    assert first == later
    assert first  # dense deployment: some links must exist


def test_mobile_swarm_topology_changes():
    mobility = RandomWaypointMobility(NAMES, area_size=100.0, radio_range=25.0,
                                      speed=5.0, seed=2)
    first = {(l.node_a, l.node_b) for l in mobility.links_at(0.0)}
    later = {(l.node_a, l.node_b) for l in mobility.links_at(60.0)}
    assert first != later


def test_positions_stay_in_area():
    mobility = RandomWaypointMobility(NAMES, area_size=40.0, radio_range=10.0,
                                      speed=3.0, seed=3)
    for time in (0.0, 10.0, 50.0, 200.0):
        mobility.links_at(time)
        for name in NAMES:
            x, y = mobility.position_of(name)
            assert 0.0 <= x <= 40.0
            assert 0.0 <= y <= 40.0


def test_links_are_symmetric_unit_disc():
    mobility = RandomWaypointMobility(NAMES, area_size=60.0, radio_range=20.0,
                                      speed=0.0, seed=4)
    links = mobility.links_at(0.0)
    for link in links:
        ax, ay = mobility.position_of(link.node_a)
        bx, by = mobility.position_of(link.node_b)
        assert ((ax - bx) ** 2 + (ay - by) ** 2) ** 0.5 <= 20.0 + 1e-9


def test_time_cannot_move_backwards():
    mobility = RandomWaypointMobility(NAMES, speed=1.0, seed=5)
    mobility.links_at(10.0)
    with pytest.raises(ValueError):
        mobility.links_at(5.0)


def test_churn_rate_grows_with_speed():
    slow = RandomWaypointMobility(NAMES, area_size=100.0, radio_range=30.0,
                                  speed=0.5, seed=6)
    fast = RandomWaypointMobility(NAMES, area_size=100.0, radio_range=30.0,
                                  speed=8.0, seed=6)
    assert fast.churn_rate(horizon=30.0, step=1.0) > \
        slow.churn_rate(horizon=30.0, step=1.0)


def test_zero_speed_churn_is_zero():
    mobility = RandomWaypointMobility(NAMES, speed=0.0, seed=7)
    assert mobility.churn_rate(horizon=10.0, step=1.0) == 0.0


def links_set(mobility, time):
    return {(l.node_a, l.node_b) for l in mobility.links_at(time)}


def test_churn_rate_does_not_perturb_the_model():
    """Diagnosing mobility must not advance the model it measures."""
    probed = RandomWaypointMobility(NAMES, area_size=80.0, radio_range=25.0,
                                    speed=4.0, seed=11)
    control = RandomWaypointMobility(NAMES, area_size=80.0, radio_range=25.0,
                                     speed=4.0, seed=11)
    rate = probed.churn_rate(horizon=30.0, step=1.0)
    assert rate > 0.0
    # links_at after the probe returns exactly what it would have
    # returned without it, at every subsequent sample.
    for time in (0.0, 5.0, 20.0, 60.0):
        assert links_set(probed, time) == links_set(control, time)
        for name in NAMES:
            assert probed.position_of(name) == control.position_of(name)


def test_churn_rate_is_repeatable():
    mobility = RandomWaypointMobility(NAMES, area_size=80.0, radio_range=25.0,
                                      speed=4.0, seed=12)
    first = mobility.churn_rate(horizon=20.0, step=1.0)
    second = mobility.churn_rate(horizon=20.0, step=1.0)
    assert first == second


def test_fork_is_independent():
    mobility = RandomWaypointMobility(NAMES, speed=3.0, seed=13)
    mobility.links_at(10.0)
    fork = mobility.fork()
    assert links_set(fork, 10.0) == links_set(mobility, 10.0)
    fork.links_at(50.0)  # advancing the fork must not advance the
    mobility.links_at(11.0)  # original past its own clock (would raise)


def test_fork_preserves_subclass_dynamics():
    """fork() must clone the subclass, not flatten it to the base model."""

    class FrozenSwarm(RandomWaypointMobility):
        def _advance(self, elapsed):
            pass  # custom dynamics: nobody ever moves

    mobility = FrozenSwarm(NAMES, area_size=80.0, radio_range=25.0,
                           speed=5.0, seed=17)
    fork = mobility.fork()
    assert type(fork) is FrozenSwarm
    assert links_set(fork, 100.0) == links_set(mobility, 100.0)
    # churn_rate probes through fork(): frozen dynamics mean zero churn,
    # which a base-class clone at speed 5 would not report.
    assert mobility.churn_rate(horizon=10.0, step=1.0) == 0.0


def test_pinned_anchor_joins_the_geometric_graph():
    mobility = RandomWaypointMobility(["roamer"], area_size=50.0,
                                      radio_range=80.0, speed=0.0, seed=14)
    mobility.pin("gateway", 25.0, 25.0)
    assert mobility.pinned_names() == ["gateway"]
    assert "gateway" not in mobility.device_names()
    assert mobility.position_of("gateway") == (25.0, 25.0)
    # Radio range covers the whole area: the link must exist.
    assert {"gateway"} <= {name for link in mobility.links_at(0.0)
                           for name in link.endpoints()}


def test_pin_rejects_duplicates_and_out_of_area_positions():
    mobility = RandomWaypointMobility(NAMES, area_size=50.0, seed=15)
    mobility.pin("gw", 10.0, 10.0)
    with pytest.raises(ValueError):
        mobility.pin("gw", 20.0, 20.0)
    with pytest.raises(ValueError):
        mobility.pin(NAMES[0], 20.0, 20.0)
    with pytest.raises(ValueError):
        mobility.pin("outside", 60.0, 10.0)


def test_grid_candidate_search_matches_all_pairs_scan():
    """The bucketed links_at must equal the brute-force O(n^2) scan."""
    import math

    mobility = RandomWaypointMobility([f"n{i}" for i in range(40)],
                                      area_size=90.0, radio_range=17.0,
                                      speed=2.5, seed=16)
    mobility.pin("anchor", 45.0, 45.0)
    for time in (0.0, 7.0, 31.0):
        links = [(l.node_a, l.node_b) for l in mobility.links_at(time)]
        names = mobility.device_names() + mobility.pinned_names()
        expected = []
        for index, first in enumerate(names):
            for second in names[index + 1:]:
                ax, ay = mobility.position_of(first)
                bx, by = mobility.position_of(second)
                if math.hypot(ax - bx, ay - by) <= 17.0:
                    expected.append((first, second))
        assert links == expected


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        RandomWaypointMobility([], speed=1.0)
    with pytest.raises(ValueError):
        RandomWaypointMobility(NAMES, area_size=0.0)
    with pytest.raises(ValueError):
        RandomWaypointMobility(NAMES, speed=-1.0)
    with pytest.raises(ValueError):
        RandomWaypointMobility(NAMES).churn_rate(horizon=0.0)


class TestPartitionMergeMobility:
    def _model(self, **overrides):
        from repro.net.mobility import PartitionMergeMobility
        parameters = dict(device_names=[f"dev{i}" for i in range(10)],
                          groups=2, period=100.0, merged_fraction=0.5)
        parameters.update(overrides)
        return PartitionMergeMobility(**parameters)

    def test_cycle_starts_partitioned_then_merges(self):
        model = self._model()
        assert not model.merged_at(0.0)
        assert not model.merged_at(49.0)
        assert model.merged_at(50.0)
        assert model.merged_at(99.0)
        assert not model.merged_at(100.0)  # next cycle

    def test_partitioned_links_stay_inside_groups(self):
        model = self._model()
        for link in model.links_at(10.0):
            assert model.group_of(link.node_a) == model.group_of(link.node_b)

    def test_merged_links_bridge_adjacent_groups(self):
        model = self._model(groups=3)
        partitioned = {(l.node_a, l.node_b) for l in model.links_at(10.0)}
        merged = {(l.node_a, l.node_b) for l in model.links_at(60.0)}
        bridges = merged - partitioned
        assert len(bridges) == 2  # chain of 3 groups: 2 bridge links
        for node_a, node_b in bridges:
            assert model.group_of(node_a) != model.group_of(node_b)

    def test_pinned_gateway_attaches_to_group_zero(self):
        model = self._model()
        model.pin("verifier", 50.0, 50.0)
        assert model.pinned_names() == ["verifier"]
        links = model.links_at(0.0)
        gateway = [l for l in links
                   if "verifier" in (l.node_a, l.node_b)]
        assert len(gateway) == 1
        other = gateway[0].node_b if gateway[0].node_a == "verifier" \
            else gateway[0].node_a
        assert model.group_of(other) == 0

    def test_pin_validation(self):
        model = self._model()
        with pytest.raises(ValueError, match="already part"):
            model.pin("dev0", 1.0, 1.0)
        with pytest.raises(ValueError, match="outside"):
            model.pin("verifier", -5.0, 1.0)

    def test_single_group_always_merged(self):
        model = self._model(groups=1)
        assert model.merged_at(0.0) and model.merged_at(10.0)

    def test_merged_fraction_extremes(self):
        assert self._model(merged_fraction=1.0).merged_at(0.0)
        assert not self._model(merged_fraction=0.0).merged_at(99.0)

    def test_fork_is_independent_and_identical(self):
        model = self._model()
        model.pin("verifier", 10.0, 10.0)
        clone = model.fork()
        assert clone.pinned_names() == ["verifier"]
        assert {(l.node_a, l.node_b) for l in clone.links_at(60.0)} == \
            {(l.node_a, l.node_b) for l in model.links_at(60.0)}
        clone.pin("extra", 20.0, 20.0)
        assert model.pinned_names() == ["verifier"]

    def test_churn_tracks_partition_cycles(self):
        model = self._model(period=20.0)
        assert model.churn_rate(horizon=100.0, step=1.0) > 0.0
        static = self._model(merged_fraction=1.0, period=20.0)
        assert static.churn_rate(horizon=100.0, step=1.0) == 0.0

    def test_invalid_parameters_rejected(self):
        from repro.net.mobility import PartitionMergeMobility
        with pytest.raises(ValueError):
            PartitionMergeMobility([])
        with pytest.raises(ValueError):
            self._model(groups=0)
        with pytest.raises(ValueError):
            self._model(period=0.0)
        with pytest.raises(ValueError):
            self._model(merged_fraction=1.5)
        with pytest.raises(ValueError):
            self._model(area_size=-1.0)
