"""Tests for the discrete-event simulation engine."""

import pytest

from repro.sim import Event, EventKind, SimulationEngine, SimulationError


def test_events_fire_in_time_order():
    engine = SimulationEngine()
    order = []
    engine.schedule(5.0, lambda event: order.append("b"))
    engine.schedule(1.0, lambda event: order.append("a"))
    engine.schedule(9.0, lambda event: order.append("c"))
    engine.run()
    assert order == ["a", "b", "c"]
    assert engine.now == pytest.approx(9.0)


def test_simultaneous_events_fire_in_scheduling_order():
    engine = SimulationEngine()
    order = []
    engine.schedule(3.0, lambda event: order.append("first"))
    engine.schedule(3.0, lambda event: order.append("second"))
    engine.run()
    assert order == ["first", "second"]


def test_run_until_stops_before_future_events():
    engine = SimulationEngine()
    fired = []
    engine.schedule(2.0, lambda event: fired.append(2.0))
    engine.schedule(8.0, lambda event: fired.append(8.0))
    processed = engine.run(until=5.0)
    assert processed == 1
    assert fired == [2.0]
    assert engine.now == pytest.approx(5.0)
    engine.run()
    assert fired == [2.0, 8.0]


def test_schedule_in_uses_relative_delay():
    engine = SimulationEngine()
    engine.schedule(4.0, lambda event: engine.schedule_in(
        3.0, lambda inner: None))
    engine.run()
    assert engine.now == pytest.approx(7.0)


def test_scheduling_in_the_past_rejected():
    engine = SimulationEngine()
    engine.schedule(10.0, lambda event: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule(5.0, lambda event: None)
    with pytest.raises(SimulationError):
        engine.schedule_in(-1.0, lambda event: None)


def test_cancelled_events_do_not_fire():
    engine = SimulationEngine()
    fired = []
    event = engine.schedule(3.0, lambda ev: fired.append("cancelled"))
    engine.schedule(4.0, lambda ev: fired.append("kept"))
    engine.cancel(event)
    engine.run()
    assert fired == ["kept"]


def test_pending_count_excludes_cancelled():
    engine = SimulationEngine()
    kept = engine.schedule(1.0, lambda event: None)
    cancelled = engine.schedule(2.0, lambda event: None)
    cancelled.cancel()
    assert engine.pending_count() == 1
    del kept


def test_events_can_schedule_more_events():
    engine = SimulationEngine()
    times = []

    def chain(event: Event) -> None:
        times.append(engine.now)
        if len(times) < 5:
            engine.schedule_in(1.0, chain, EventKind.TIMER)

    engine.schedule(1.0, chain, EventKind.TIMER)
    engine.run(until=100.0)
    assert times == [pytest.approx(t) for t in (1.0, 2.0, 3.0, 4.0, 5.0)]


def test_max_events_limit():
    engine = SimulationEngine()
    for index in range(10):
        engine.schedule(float(index), lambda event: None)
    processed = engine.run(max_events=4)
    assert processed == 4
    assert engine.pending_count() == 6


def test_step_returns_event_and_none_when_idle():
    engine = SimulationEngine()
    engine.schedule(1.0, lambda event: None, EventKind.COLLECTION)
    event = engine.step()
    assert event is not None
    assert event.kind is EventKind.COLLECTION
    assert engine.step() is None


def test_events_processed_counter():
    engine = SimulationEngine()
    for index in range(3):
        engine.schedule(float(index + 1), lambda event: None)
    engine.run()
    assert engine.events_processed == 3


def test_run_async_matches_run():
    import asyncio

    times = []
    engine = SimulationEngine()
    for index in range(10):
        engine.schedule(float(index), lambda event: times.append(event.time))
    processed = asyncio.run(engine.run_async(until=20.0, yield_every=3))
    assert processed == 10
    assert times == [float(index) for index in range(10)]
    assert engine.now == 20.0


def test_run_async_rejects_bad_yield_interval_and_reentry():
    import asyncio

    engine = SimulationEngine()
    with pytest.raises(SimulationError):
        asyncio.run(engine.run_async(yield_every=0))

    async def reenter():
        for index in range(8):
            engine.schedule(float(index), lambda event: None)
        # yield_every=1 forces the first drain to suspend after each
        # event, so the second one genuinely starts mid-run.
        first = engine.run_async(yield_every=1)
        second = engine.run_async(max_events=1)
        return await asyncio.gather(first, second,
                                    return_exceptions=True)

    results = asyncio.run(reenter())
    assert any(isinstance(result, SimulationError) for result in results)


def test_truncated_run_does_not_jump_clock_past_pending_events():
    """A max_events-capped drain must not strand queued events behind now."""
    engine = SimulationEngine()
    engine.schedule(5.0, lambda event: None)
    engine.schedule(10.0, lambda event: None)
    processed = engine.run(until=100.0, max_events=1)
    assert processed == 1
    assert engine.now == 5.0  # not 100.0: the t=10 event is still queued
    engine.schedule(50.0, lambda event: None)  # must not be "in the past"
    engine.run(until=100.0)
    assert engine.now == 100.0
