"""Tests for the protocol message encodings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CollectRequest,
    CollectResponse,
    Measurement,
    OnDemandRequest,
    OnDemandResponse,
)
from repro.core.protocol import ProtocolDecodeError


def record(timestamp: float) -> Measurement:
    return Measurement(timestamp=timestamp, digest=bytes([int(timestamp)]) * 32,
                       tag=b"\x99" * 32)


def test_collect_request_roundtrip():
    request = CollectRequest(k=7)
    assert CollectRequest.decode(request.encode()) == request


def test_collect_request_invalid():
    with pytest.raises(ValueError):
        CollectRequest(k=-1).encode()
    with pytest.raises(ProtocolDecodeError):
        CollectRequest.decode(b"\xFF\x00\x00\x00\x07")
    with pytest.raises(ProtocolDecodeError):
        CollectRequest.decode(b"\x01")


def test_collect_response_roundtrip():
    response = CollectResponse(measurements=[record(30.0), record(20.0)])
    decoded = CollectResponse.decode(response.encode())
    assert len(decoded.measurements) == 2
    assert decoded.measurements[0].timestamp == pytest.approx(30.0)
    assert decoded.measurements[1].digest == record(20.0).digest


def test_empty_collect_response_roundtrip():
    decoded = CollectResponse.decode(CollectResponse().encode())
    assert decoded.measurements == []


def test_collect_response_rejects_corruption():
    encoded = CollectResponse(measurements=[record(30.0)]).encode()
    with pytest.raises(ProtocolDecodeError):
        CollectResponse.decode(encoded[:-4])
    with pytest.raises(ProtocolDecodeError):
        CollectResponse.decode(encoded + b"\x00")
    with pytest.raises(ProtocolDecodeError):
        CollectResponse.decode(b"\x07" + encoded[1:])


def test_ondemand_request_roundtrip():
    request = OnDemandRequest(request_time=101.5, k=4, tag=b"\x42" * 32)
    decoded = OnDemandRequest.decode(request.encode())
    assert decoded.request_time == pytest.approx(101.5)
    assert decoded.k == 4
    assert decoded.tag == b"\x42" * 32


def test_ondemand_request_rejects_bad_payload():
    with pytest.raises(ProtocolDecodeError):
        OnDemandRequest.decode(b"\x03\x00")
    encoded = OnDemandRequest(request_time=1.0, k=1, tag=b"\x00" * 32).encode()
    with pytest.raises(ProtocolDecodeError):
        OnDemandRequest.decode(encoded[:-1])


def test_ondemand_response_roundtrip_with_fresh():
    response = OnDemandResponse(fresh=record(50.0),
                                measurements=[record(40.0), record(30.0)])
    decoded = OnDemandResponse.decode(response.encode())
    assert decoded.fresh is not None
    assert decoded.fresh.timestamp == pytest.approx(50.0)
    assert [m.timestamp for m in decoded.measurements] == [40.0, 30.0]


def test_ondemand_response_roundtrip_refusal():
    decoded = OnDemandResponse.decode(
        OnDemandResponse(fresh=None, measurements=[]).encode())
    assert decoded.fresh is None
    assert decoded.measurements == []


def test_response_size_reflects_measurement_count():
    small = CollectResponse(measurements=[record(1.0)])
    large = CollectResponse(measurements=[record(float(t)) for t in range(10)])
    assert large.size_bytes > small.size_bytes


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                max_size=12))
def test_collect_response_roundtrip_property(timestamps):
    response = CollectResponse(measurements=[record(min(t, 255.0))
                                             for t in timestamps])
    decoded = CollectResponse.decode(response.encode())
    assert len(decoded.measurements) == len(timestamps)
