"""The ERASMUS prover.

The prover (Prv) owns a security architecture (SMART+ or HYDRA), a
measurement scheduler and the rolling measurement store.  It performs
two activities:

* **measurement phase** — triggered by its own timer according to the
  configured schedule, with no verifier involvement;
* **collection phase** — triggered by a verifier request; the prover
  merely reads its stored measurements and transmits them (Figure 2).
  In the ERASMUS+OD variant it additionally authenticates the request
  and computes one fresh measurement (Figure 4).

The prover can run attached to a :class:`repro.sim.SimulationEngine`
(events drive measurements automatically) or be driven manually by
calling :meth:`take_measurement` — the latter is what the cost-model
benchmarks use.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.arch.base import MeasurementAborted, SecurityArchitecture
from repro.core.config import ErasmusConfig, ScheduleKind
from repro.core.measurement import Measurement
from repro.core.protocol import (
    CollectRequest,
    CollectResponse,
    OnDemandRequest,
    OnDemandResponse,
)
from repro.core.scheduler import MeasurementScheduler, build_scheduler
from repro.core.storage import MeasurementStore
from repro.sim.engine import SimulationEngine
from repro.sim.events import Event, EventKind


class ErasmusProver:
    """An ERASMUS prover device.

    Parameters
    ----------
    architecture:
        The underlying security architecture (provides measurement,
        request authentication and the RROC).
    config:
        Deployment parameters (``T_M``, ``n``, schedule, ...).
    device_id:
        Identifier used in traces and by the verifier's bookkeeping.
    scheduling_key:
        Seed for the CSPRNG when ``config.schedule`` is ``IRREGULAR``;
        in a real deployment this is derived from ``K`` inside the
        protected code.
    critical_task_active:
        Optional predicate ``time -> bool``.  When it returns ``True``
        at measurement time, the measurement is aborted (Section 5) and
        handled according to the scheduler's abort policy.
    """

    def __init__(self, architecture: SecurityArchitecture,
                 config: ErasmusConfig, device_id: str = "prover",
                 scheduling_key: bytes = b"",
                 critical_task_active: Optional[Callable[[float], bool]] = None
                 ) -> None:
        self.architecture = architecture
        self.config = config
        self.device_id = device_id
        if config.crypto_backend is not None:
            # The deployment config wins over whatever default the
            # architecture was built with, so prover-side measurement
            # crypto and the schedule CSPRNG use the same provider.
            architecture.use_crypto_backend(config.crypto_backend)
        self.scheduler: MeasurementScheduler = build_scheduler(
            config, key=scheduling_key, device_nonce=device_id.encode())
        # The stateless timestamp-to-slot rule assumes at most one
        # measurement per T_M window; irregular schedules violate that,
        # so they fall back to round-robin slot assignment.
        self.store = MeasurementStore(
            config.buffer_slots, config.measurement_interval,
            stateless=config.schedule is not ScheduleKind.IRREGULAR)
        self.critical_task_active = critical_task_active
        self._engine: Optional[SimulationEngine] = None
        self._window_start = 0.0
        self.measurements_taken = 0
        self.measurements_aborted = 0
        self.measurements_missed = 0
        self.collections_served = 0
        self.busy_intervals: List[tuple[float, float]] = []
        #: Observers called after every engine-scheduled measurement
        #: attempt with ``(device_id, time, measurement-or-None)``.
        #: This is the Section 3.5 observation channel: measurement
        #: activity is externally visible (busy CPU), so schedule-aware
        #: malware can react to *when* measurements happen without ever
        #: touching the scheduler's CSPRNG state.
        self.measurement_listeners: List[
            Callable[[str, float, Optional[Measurement]], None]] = []

    # ------------------------------------------------------------------
    # Measurement phase
    # ------------------------------------------------------------------
    def take_measurement(self, time: float) -> Optional[Measurement]:
        """Perform one self-measurement at the given simulation time.

        Returns the stored record, or ``None`` when the measurement was
        aborted because a critical task was active.
        """
        self.architecture.advance_clock(time)
        abort = bool(self.critical_task_active and
                     self.critical_task_active(time))
        try:
            output = self.architecture.perform_measurement(abort=abort)
        except MeasurementAborted:
            self.measurements_aborted += 1
            return None
        measurement = Measurement.from_output(output)
        self.store.store(measurement)
        self.measurements_taken += 1
        self.busy_intervals.append((time, time + measurement.duration))
        return measurement

    def attach(self, engine: SimulationEngine, start_time: float = 0.0) -> None:
        """Attach to a simulation engine and start the measurement schedule."""
        self._engine = engine
        self._window_start = start_time
        first = self.scheduler.next_time(start_time)
        engine.schedule(first, self._on_measurement_due,
                        EventKind.MEASUREMENT, payload=self.device_id)

    def _on_measurement_due(self, event: Event) -> None:
        assert self._engine is not None
        time = self._engine.now
        measurement = self.take_measurement(time)
        self._engine.trace.record(
            time, "measurement", device=self.device_id,
            aborted=measurement is None,
            timestamp=None if measurement is None else measurement.timestamp)
        for listener in list(self.measurement_listeners):
            listener(self.device_id, time, measurement)
        if measurement is None:
            retry = self.scheduler.reschedule_after_abort(
                time, self._window_start)
            if retry is not None and retry > time:
                self._engine.schedule(retry, self._on_measurement_due,
                                      EventKind.MEASUREMENT,
                                      payload=self.device_id)
                return
            self.measurements_missed += 1
        self._window_start = time
        next_time = self.scheduler.next_time(time)
        self._engine.schedule(next_time, self._on_measurement_due,
                              EventKind.MEASUREMENT, payload=self.device_id)

    # ------------------------------------------------------------------
    # Collection phase (Figure 2)
    # ------------------------------------------------------------------
    def handle_collect(self, request: CollectRequest) -> CollectResponse:
        """Serve a plain ERASMUS collection: read and transmit, nothing else."""
        k = min(request.k, self.store.slots)
        self.collections_served += 1
        return CollectResponse(measurements=self.store.latest(k))

    def collection_runtime(self, on_demand: bool = False) -> float:
        """Modelled prover-side run-time of serving one collection.

        Plain ERASMUS collections involve no cryptography: only packet
        construction and transmission (Table 2).  ERASMUS+OD adds the
        request verification and a full measurement.
        """
        breakdown = self.architecture.cost_model.collection_runtime(
            self.architecture.measured_memory_bytes(),
            self.architecture.mac_name, on_demand=on_demand)
        return breakdown["total"]

    # ------------------------------------------------------------------
    # ERASMUS+OD collection (Figure 4)
    # ------------------------------------------------------------------
    def handle_ondemand(self, request: OnDemandRequest,
                        time: Optional[float] = None) -> OnDemandResponse:
        """Serve an ERASMUS+OD request: authenticate, measure, return history.

        A request that fails authentication (bad MAC, stale or replayed
        timestamp) is refused without computing anything expensive —
        that is the whole point of the SMART+ anti-DoS check.
        """
        if time is not None:
            self.architecture.advance_clock(time)
        authentic = self.architecture.authenticate_request(
            payload=b"", tag=request.tag, request_time=request.request_time,
            freshness_window=self.config.request_freshness_window)
        if not authentic:
            return OnDemandResponse(fresh=None, measurements=[])
        measurement_time = time if time is not None \
            else self.architecture.read_clock()
        fresh = self.take_measurement(measurement_time)
        if fresh is None:
            return OnDemandResponse(fresh=None, measurements=[])
        k = min(request.k, self.store.slots)
        history = [entry for entry in self.store.latest(k)
                   if entry.timestamp != fresh.timestamp]
        self.collections_served += 1
        return OnDemandResponse(fresh=fresh, measurements=history)

    # ------------------------------------------------------------------
    # Availability accounting (Section 5)
    # ------------------------------------------------------------------
    def busy_fraction(self, start: float, end: float) -> float:
        """Fraction of ``[start, end]`` spent computing measurements."""
        if end <= start:
            raise ValueError("end must be after start")
        busy = 0.0
        for interval_start, interval_end in self.busy_intervals:
            overlap = min(end, interval_end) - max(start, interval_start)
            if overlap > 0:
                busy += overlap
        return busy / (end - start)

    def is_busy_at(self, time: float) -> bool:
        """True when a measurement is in progress at ``time``."""
        return any(start <= time < end for start, end in self.busy_intervals)
