"""Engine mechanics: pragmas, ordering, scanning, test detection."""

import ast
from pathlib import Path

from repro.statics.engine import (
    FileContext,
    Finding,
    parse_pragmas,
    run_checks,
    scan_paths,
)
from repro.statics.checkers import all_checkers
from repro.statics.checkers.determinism import DeterminismChecker

from tests.statics.helpers import context_for, lint, write_tree


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------
def test_pragma_on_the_same_line_suppresses():
    source = ("import time\n"
              "stamp = time.time()  # statics: ok(determinism)\n")
    assert lint(DeterminismChecker(), source) == []


def test_pragma_on_the_line_above_suppresses_the_next_line():
    source = ("import time\n"
              "# statics: ok(determinism) — operational only\n"
              "stamp = time.time()\n")
    assert lint(DeterminismChecker(), source) == []


def test_pragma_wildcard_suppresses_every_rule():
    source = ("import time\n"
              "stamp = time.time()  # statics: ok(*)\n")
    assert lint(DeterminismChecker(), source) == []


def test_pragma_for_a_different_rule_does_not_suppress():
    source = ("import time\n"
              "stamp = time.time()  # statics: ok(constant-time)\n")
    ctx = context_for(source)
    findings, _ = run_checks(
        ctx, [DeterminismChecker()],
        {checker.rule for checker in all_checkers()})
    assert [finding.rule for finding in findings] == ["determinism"]


def test_pragma_in_a_docstring_is_inert():
    # The docs *describe* the pragma syntax; tokenize-based parsing
    # must not treat prose as a suppression (or as an unknown-rule
    # pragma finding).
    source = ('"""Write # statics: ok(some-imaginary-rule) to opt out.\n'
              '"""\n'
              "import time\n"
              "stamp = time.time()\n")
    assert parse_pragmas(source) == {}
    findings = lint(DeterminismChecker(), source)
    assert [finding.rule for finding in findings] == ["determinism"]


def test_pragma_naming_an_unknown_rule_is_itself_a_finding():
    source = "value = 1  # statics: ok(no-such-rule)\n"
    ctx = context_for(source)
    findings, _ = run_checks(ctx, [DeterminismChecker()],
                             {"determinism"})
    assert [finding.rule for finding in findings] == ["pragma"]
    assert "no-such-rule" in findings[0].message


def test_pragma_rule_list_is_comma_separated():
    pragmas = parse_pragmas(
        "x = 1  # statics: ok(determinism, constant-time)\n")
    assert pragmas == {1: {"determinism", "constant-time"}}


# ----------------------------------------------------------------------
# Findings
# ----------------------------------------------------------------------
def test_findings_order_by_location_then_rule():
    rows = [
        Finding("b.py", 1, 0, "zeta", "m"),
        Finding("a.py", 9, 0, "alpha", "m"),
        Finding("a.py", 2, 4, "beta", "m"),
        Finding("a.py", 2, 0, "beta", "m"),
    ]
    assert [f.path for f in sorted(rows)] == ["a.py", "a.py", "a.py",
                                              "b.py"]
    assert [(f.line, f.col) for f in sorted(rows)[:3]] == \
        [(2, 0), (2, 4), (9, 0)]


def test_finding_render_is_the_classic_lint_line():
    finding = Finding("src/m.py", 3, 4, "codec", "boom")
    assert finding.render() == "src/m.py:3:4: codec error: boom"


# ----------------------------------------------------------------------
# File classification
# ----------------------------------------------------------------------
def test_test_files_are_detected_and_skipped_by_test_exempt_rules():
    source = "flag = device_key == expected_mac\n"
    from repro.statics.checkers.constant_time import ConstantTimeChecker
    assert lint(ConstantTimeChecker(), source,
                relpath="tests/fleet/test_x.py") == []
    assert lint(ConstantTimeChecker(), source,
                relpath="src/repro/fleet/x.py") != []


def test_conftest_counts_as_a_test_file():
    ctx = FileContext(Path("conftest.py"), "conftest.py", "",
                      ast.parse(""))
    assert ctx.is_test


# ----------------------------------------------------------------------
# scan_paths
# ----------------------------------------------------------------------
def test_scan_paths_reports_unparsable_files_as_parse_findings(tmp_path):
    write_tree(tmp_path, {"pkg/broken.py": "def broken(:\n"})
    result = scan_paths([tmp_path], all_checkers(),
                        relative_to=tmp_path)
    assert [finding.rule for finding in result.findings] == ["parse"]
    assert result.findings[0].path == "pkg/broken.py"


def test_scan_paths_skips_hidden_and_pycache_trees(tmp_path):
    write_tree(tmp_path, {
        "pkg/ok.py": "value = 1\n",
        "pkg/__pycache__/junk.py": "import time\ntime.time()\n",
        ".hidden/junk.py": "import time\ntime.time()\n",
    })
    result = scan_paths([tmp_path], all_checkers(),
                        relative_to=tmp_path)
    assert result.files_scanned == 1
    assert result.findings == []


def test_scan_paths_is_clean_on_a_clean_tree(tmp_path):
    write_tree(tmp_path, {"pkg/mod.py": (
        "from fractions import Fraction\n"
        "def mean(total, count):\n"
        "    return Fraction(total, count)\n")})
    result = scan_paths([tmp_path], all_checkers(),
                        relative_to=tmp_path)
    assert result.clean
    assert result.files_scanned == 1
