"""QoA statistics: freshness, detection curves and ERASMUS-vs-on-demand."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.adversary.malware import MalwareCampaign
from repro.analysis.detection import simulate_detection
from repro.core.qoa import QoA, detection_probability, expected_freshness


def collection_freshness(measurement_times: Sequence[float],
                         collection_times: Sequence[float]) -> List[float]:
    """Freshness ``f`` observed at each collection.

    Freshness is the age of the newest measurement available at
    collection time; collections before the first measurement are
    skipped.  Section 3.1 predicts values between 0 and ``T_M`` with an
    average of ``T_M / 2``.
    """
    ordered = sorted(measurement_times)
    freshness: List[float] = []
    for collection_time in sorted(collection_times):
        previous = [time for time in ordered if time <= collection_time]
        if previous:
            freshness.append(collection_time - previous[-1])
    return freshness


@dataclass
class QoAComparison:
    """Side-by-side QoA outcome of ERASMUS versus on-demand attestation."""

    erasmus: QoA
    on_demand: QoA
    erasmus_detection_rate: float
    on_demand_detection_rate: float
    erasmus_mean_latency: float | None
    on_demand_mean_latency: float | None

    @property
    def detection_advantage(self) -> float:
        """Absolute detection-rate gain of ERASMUS over on-demand RA."""
        return self.erasmus_detection_rate - self.on_demand_detection_rate


def compare_erasmus_vs_ondemand(measurement_interval: float,
                                collection_interval: float,
                                mean_dwell: float,
                                arrival_rate: float = 1 / 600.0,
                                horizon: float = 24 * 3600.0,
                                seed: int = 0) -> QoAComparison:
    """Run matched mobile-malware campaigns against both approaches.

    Both receive the *same* infection campaign (same seed).  ERASMUS
    measures every ``T_M`` and collects every ``T_C``; on-demand RA only
    measures at collection time.  The gap in detection rate is the
    paper's central motivation.
    """
    campaign = MalwareCampaign(arrival_rate=arrival_rate,
                               mean_dwell=mean_dwell, seed=seed)
    erasmus_summary = simulate_detection(
        measurement_interval, collection_interval, campaign, horizon)
    on_demand_summary = simulate_detection(
        measurement_interval, collection_interval, campaign, horizon,
        on_demand_only=True)
    return QoAComparison(
        erasmus=QoA(measurement_interval, collection_interval),
        on_demand=QoA(collection_interval, collection_interval,
                      on_demand_only=True),
        erasmus_detection_rate=erasmus_summary.detection_rate,
        on_demand_detection_rate=on_demand_summary.detection_rate,
        erasmus_mean_latency=erasmus_summary.mean_latency,
        on_demand_mean_latency=on_demand_summary.mean_latency,
    )


def detection_curve(measurement_interval: float,
                    dwell_times: Sequence[float]) -> Dict[float, float]:
    """Analytic detection probability as a function of malware dwell time.

    Returns ``{dwell: P(detected)}`` for a regular schedule with the
    given ``T_M`` — the curve behind the Figure 1 intuition that the
    escape window shrinks linearly with ``T_M``.
    """
    return {dwell: detection_probability(dwell, measurement_interval)
            for dwell in dwell_times}


def freshness_statistics(measurement_interval: float,
                         collection_interval: float,
                         horizon: float) -> Dict[str, float]:
    """Observed vs predicted freshness for a regular deployment."""
    measurement_times = _times(measurement_interval, horizon)
    collection_times = _times(collection_interval, horizon)
    observed = collection_freshness(measurement_times, collection_times)
    mean_observed = sum(observed) / len(observed) if observed else 0.0
    return {
        "predicted_mean": expected_freshness(measurement_interval),
        "observed_mean": mean_observed,
        "observed_max": max(observed) if observed else 0.0,
        "samples": float(len(observed)),
    }


def _times(interval: float, horizon: float) -> List[float]:
    times: List[float] = []
    time = interval
    while time <= horizon:
        times.append(time)
        time += interval
    return times
