"""Tests for the measurement schedulers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ErasmusConfig,
    IrregularScheduler,
    LenientScheduler,
    RegularScheduler,
    ScheduleKind,
    build_scheduler,
)


class TestRegularScheduler:
    def test_fixed_interval(self):
        scheduler = RegularScheduler(60.0)
        assert scheduler.next_interval(0.0) == 60.0
        assert scheduler.next_time(120.0) == 180.0

    def test_schedule_generation(self):
        scheduler = RegularScheduler(10.0)
        assert scheduler.schedule(0.0, 35.0) == [10.0, 20.0, 30.0]

    def test_no_abort_recovery(self):
        scheduler = RegularScheduler(10.0)
        assert scheduler.reschedule_after_abort(12.0, 10.0) is None

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            RegularScheduler(0.0)


class TestIrregularScheduler:
    def test_intervals_respect_bounds(self):
        scheduler = IrregularScheduler(b"key", lower=30.0, upper=90.0)
        intervals = [scheduler.next_interval(0.0) for _ in range(200)]
        assert all(30.0 <= interval < 90.0 for interval in intervals)

    def test_intervals_vary(self):
        scheduler = IrregularScheduler(b"key", lower=30.0, upper=90.0)
        intervals = {round(scheduler.next_interval(0.0), 3)
                     for _ in range(50)}
        assert len(intervals) > 10

    def test_same_key_reproduces_schedule(self):
        first = IrregularScheduler(b"key", 30.0, 90.0, device_nonce=b"d1")
        second = IrregularScheduler(b"key", 30.0, 90.0, device_nonce=b"d1")
        assert [first.next_interval(0.0) for _ in range(10)] == \
            [second.next_interval(0.0) for _ in range(10)]

    def test_different_devices_get_different_schedules(self):
        first = IrregularScheduler(b"key", 30.0, 90.0, device_nonce=b"d1")
        second = IrregularScheduler(b"key", 30.0, 90.0, device_nonce=b"d2")
        assert [first.next_interval(0.0) for _ in range(5)] != \
            [second.next_interval(0.0) for _ in range(5)]

    def test_nominal_interval_is_midpoint(self):
        scheduler = IrregularScheduler(b"key", 30.0, 90.0)
        assert scheduler.measurement_interval == pytest.approx(60.0)

    def test_batched_intervals_match_sequential_draws(self):
        batched = IrregularScheduler(b"key", 30.0, 90.0,
                                     device_nonce=b"d1").intervals(40)
        sequential_scheduler = IrregularScheduler(b"key", 30.0, 90.0,
                                                  device_nonce=b"d1")
        sequential = [sequential_scheduler.next_interval(0.0)
                      for _ in range(40)]
        assert batched == sequential
        assert all(30.0 <= interval < 90.0 for interval in batched)

    def test_backends_regenerate_identical_schedules(self):
        reference = IrregularScheduler(b"key", 30.0, 90.0,
                                       device_nonce=b"d1",
                                       backend="reference")
        accelerated = IrregularScheduler(b"key", 30.0, 90.0,
                                         device_nonce=b"d1",
                                         backend="accelerated")
        assert reference.intervals(20) == accelerated.intervals(20)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            IrregularScheduler(b"key", 0.0, 90.0)
        with pytest.raises(ValueError):
            IrregularScheduler(b"key", 90.0, 30.0)


class TestLenientScheduler:
    def test_nominal_behaviour_is_regular(self):
        scheduler = LenientScheduler(60.0, window_factor=2.0)
        assert scheduler.next_interval(0.0) == 60.0
        assert scheduler.window_length() == 120.0

    def test_abort_reschedules_to_window_end(self):
        scheduler = LenientScheduler(60.0, window_factor=2.0)
        retry = scheduler.reschedule_after_abort(abort_time=70.0,
                                                 window_start=60.0)
        assert retry == pytest.approx(180.0)

    def test_abort_after_window_gives_up(self):
        scheduler = LenientScheduler(60.0, window_factor=1.5)
        assert scheduler.reschedule_after_abort(abort_time=200.0,
                                                window_start=60.0) is None

    def test_invalid_window_factor(self):
        with pytest.raises(ValueError):
            LenientScheduler(60.0, window_factor=0.9)


class TestBuildScheduler:
    def test_builds_each_kind(self):
        regular = build_scheduler(ErasmusConfig())
        assert isinstance(regular, RegularScheduler)
        irregular = build_scheduler(
            ErasmusConfig(schedule=ScheduleKind.IRREGULAR), key=b"key")
        assert isinstance(irregular, IrregularScheduler)
        lenient = build_scheduler(
            ErasmusConfig(schedule=ScheduleKind.LENIENT,
                          lenient_window_factor=2.0))
        assert isinstance(lenient, LenientScheduler)

    def test_irregular_without_key_rejected(self):
        with pytest.raises(ValueError):
            build_scheduler(ErasmusConfig(schedule=ScheduleKind.IRREGULAR))


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
       st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
def test_regular_schedule_is_strictly_increasing(interval, start):
    scheduler = RegularScheduler(interval)
    times = scheduler.schedule(start, start + interval * 5.5)
    assert all(later > earlier for earlier, later in zip(times, times[1:]))
    assert len(times) == 5


@settings(max_examples=20, deadline=None)
@given(st.binary(min_size=1, max_size=32))
def test_irregular_schedule_is_strictly_increasing(seed_key):
    scheduler = IrregularScheduler(seed_key, lower=5.0, upper=15.0)
    times = scheduler.schedule(0.0, 200.0)
    assert all(later > earlier for earlier, later in zip(times, times[1:]))
    gaps = [later - earlier for earlier, later in zip(times, times[1:])]
    assert all(5.0 <= gap < 15.0 for gap in gaps)
