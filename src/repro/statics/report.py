"""Render a :class:`~repro.statics.engine.ScanResult` as text or JSON.

The JSON form is byte-stable: findings are sorted, keys are sorted,
and nothing time- or machine-dependent (timestamps, absolute paths,
durations) ever enters the document, so the same tree always produces
the same bytes — CI can diff reports across runs and the regression
suite pins the exact bytes on a fixture tree.
"""

from __future__ import annotations

import json

from repro.statics.engine import ScanResult

REPORT_VERSION = 1


def render_text(result: ScanResult) -> str:
    """Human-readable report: one lint line per finding + a summary."""
    lines = [finding.render() for finding in result.findings]
    summary = (f"{len(result.findings)} finding(s) in "
               f"{result.files_scanned} file(s)"
               f" [{len(result.baselined)} baselined, "
               f"{result.suppressed} pragma-suppressed, "
               f"{len(result.checkers)} checker(s)]")
    lines.append(summary)
    return "\n".join(lines) + "\n"


def render_json(result: ScanResult) -> bytes:
    """Byte-stable JSON report (sorted findings, sorted keys, no clock)."""
    payload = {
        "version": REPORT_VERSION,
        "tool": "repro.statics",
        "checkers": sorted(result.checkers),
        "files_scanned": result.files_scanned,
        "findings": [finding.to_row()
                     for finding in sorted(result.findings)],
        "baselined": [finding.to_row()
                      for finding in sorted(result.baselined)],
        "suppressed": result.suppressed,
    }
    return (json.dumps(payload, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")
