"""The ERASMUS verifier (single-device legacy entry point).

The verifier (Vrf) shares the symmetric key ``K`` with each prover and
knows the prover's expected (healthy) software states and measurement
schedule.  During a collection it:

* verifies the MAC of every received measurement (tampering with the
  insecure buffer is thereby detected — malware cannot forge MACs);
* checks that timestamps are plausible: monotonically increasing,
  conforming to the expected schedule (missing measurements show up as
  gaps), and not from the future;
* compares each digest against the set of known-good software states to
  decide whether the prover was healthy *at each measurement time* —
  this is what lets ERASMUS detect mobile malware that has already left;
* computes freshness (collection time minus newest timestamp).

The checks themselves live in the stateless
:class:`repro.core.verification.VerificationCore`, and enrollment
bookkeeping in :class:`repro.core.verification.BaseVerifier`; this
class is the thin stateful shim that keeps the original hand-wired API
working.  New code — anything managing more than a handful of devices —
should use :class:`repro.fleet.FleetVerifier`, which runs the same core
with batched collections, transports and report sinks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.store.base import StateStore

from repro.core.config import ErasmusConfig
from repro.core.measurement import Measurement
from repro.core.protocol import OnDemandRequest, OnDemandResponse
from repro.core.verification import (
    BaseVerifier,
    DeviceStatus,
    MeasurementVerdict,
    VerificationReport,
)

__all__ = [
    "DeviceStatus",
    "ErasmusVerifier",
    "MeasurementVerdict",
    "VerificationReport",
]


class ErasmusVerifier(BaseVerifier):
    """A verifier that manages one or more provers sharing per-device keys.

    Deprecated as the primary entry point in favour of
    :class:`repro.fleet.FleetVerifier`; kept as a fully working shim for
    single-device walkthroughs and the original examples.  All policy
    parameters are forwarded to the underlying
    :class:`~repro.core.verification.VerificationCore` (see there for
    the meaning of ``schedule_tolerance`` and ``allowed_missing``).
    """

    def __init__(self, config: ErasmusConfig,
                 schedule_tolerance: float = 0.25,
                 allowed_missing: int = 0,
                 store: Optional["StateStore"] = None) -> None:
        super().__init__(config, schedule_tolerance=schedule_tolerance,
                         allowed_missing=allowed_missing, store=store)
        self.reports: List[VerificationReport] = []
        self._request_counter = 0.0

    # ------------------------------------------------------------------
    # Request creation
    # ------------------------------------------------------------------
    def create_ondemand_request(self, device_id: str, request_time: float,
                                k: Optional[int] = None) -> OnDemandRequest:
        """Build an authenticated ERASMUS+OD request for one prover."""
        enrollment = self._enrollment_for(device_id)
        if k is None:
            k = self.config.measurements_per_collection
        # Guarantee strictly increasing request timestamps even if two
        # requests are created at the same simulation instant.
        if request_time <= self._request_counter:
            request_time = self._request_counter + 1e-6
        self._request_counter = request_time
        tag = self.core.request_tag(enrollment.key, request_time)
        return OnDemandRequest(request_time=request_time, k=k, tag=tag)

    # ------------------------------------------------------------------
    # Verification (verify_collection inherited from BaseVerifier)
    # ------------------------------------------------------------------
    def verify_ondemand(self, device_id: str, request: OnDemandRequest,
                        response: OnDemandResponse,
                        collection_time: float) -> VerificationReport:
        """Verify an ERASMUS+OD response (Figure 4, verifier side)."""
        enrollment = self._enrollment_for(device_id)
        report = self.core.verify_ondemand(enrollment, request, response,
                                           collection_time)
        return self._commit(report)

    def _verify_measurements(self, device_id: str,
                             measurements: List[Measurement],
                             collection_time: float,
                             expect_nonempty: bool) -> VerificationReport:
        """Compatibility hook mirroring the pre-refactor private API."""
        enrollment = self._enrollment_for(device_id)
        report = self.core.verify_measurements(enrollment, measurements,
                                               collection_time,
                                               expect_nonempty=expect_nonempty)
        return self._commit(report)

    def _commit(self, report: VerificationReport) -> VerificationReport:
        """Record a finished report and advance per-device bookkeeping."""
        self._advance_bookkeeping(report)
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    # History
    # ------------------------------------------------------------------
    def reports_for(self, device_id: str) -> List[VerificationReport]:
        """All reports produced so far for one device."""
        return [report for report in self.reports
                if report.device_id == device_id]
