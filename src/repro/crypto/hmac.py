"""HMAC (RFC 2104) built on the from-scratch hash implementations.

HMAC-SHA1 and HMAC-SHA256 are two of the three MAC constructions the
paper evaluates for ERASMUS measurements.  The streaming :class:`Hmac`
class is always the *reference* implementation (it exposes the
compression-function work counts the cost models need); the one-shot
:func:`hmac_digest` helper dispatches through the pluggable backend
registry (:mod:`repro.crypto.backend`) and is what hot paths should
call.  The implementation is generic over any hash class exposing the
``update``/``digest``/``block_size`` interface of
:class:`repro.crypto.sha256.Sha256`.
"""

from __future__ import annotations

from typing import Type

from repro.crypto.backend import BackendSpec, resolve_backend
from repro.crypto.sha1 import Sha1
from repro.crypto.sha256 import Sha256

_HASH_CLASSES: dict[str, type] = {
    "sha1": Sha1,
    "sha256": Sha256,
}


class Hmac:
    """Streaming HMAC object.

    Parameters
    ----------
    key:
        The MAC key (any length; longer than one block is hashed first,
        as RFC 2104 prescribes).
    data:
        Optional initial message bytes.
    hash_name:
        Either ``"sha1"`` or ``"sha256"``, or a hash class with the
        standard streaming interface.
    """

    def __init__(self, key: bytes, data: bytes = b"",
                 hash_name: str | Type = "sha256") -> None:
        if isinstance(hash_name, str):
            try:
                hash_cls = _HASH_CLASSES[hash_name.lower()]
            except KeyError as exc:
                raise ValueError(f"unknown HMAC hash: {hash_name!r}") from exc
        else:
            hash_cls = hash_name
        self._hash_cls = hash_cls
        self.block_size = hash_cls.block_size
        self.digest_size = hash_cls.digest_size
        self.name = f"hmac-{hash_cls.name}"

        key = bytes(key)
        if len(key) > self.block_size:
            key = hash_cls(key).digest()
        key = key + b"\x00" * (self.block_size - len(key))

        self._outer_key = bytes(b ^ 0x5C for b in key)
        self._inner = hash_cls(bytes(b ^ 0x36 for b in key))
        if data:
            self._inner.update(data)

    def update(self, data: bytes) -> None:
        """Absorb ``data`` into the MAC state."""
        self._inner.update(data)

    def copy(self) -> "Hmac":
        """Return an independent copy of the current MAC state."""
        clone = object.__new__(Hmac)
        clone._hash_cls = self._hash_cls
        clone.block_size = self.block_size
        clone.digest_size = self.digest_size
        clone.name = self.name
        clone._outer_key = self._outer_key
        clone._inner = self._inner.copy()
        return clone

    def digest(self) -> bytes:
        """Return the MAC of all data absorbed so far."""
        outer = self._hash_cls(self._outer_key)
        outer.update(self._inner.digest())
        return outer.digest()

    def hexdigest(self) -> str:
        """Return the MAC as a lowercase hex string."""
        return self.digest().hex()

    @property
    def compressions(self) -> int:
        """Total compression-function invocations so far (inner pass only).

        The two extra outer-pass compressions are added by
        :meth:`total_compressions` because they only happen at
        finalization time.
        """
        return self._inner.compressions

    def total_compressions(self) -> int:
        """Compression count including the outer finalization pass."""
        outer = self._hash_cls(self._outer_key)
        outer.update(self._inner.copy().digest())
        outer.digest()
        return self._inner.compressions + outer.compressions


def hmac_digest(key: bytes, data: bytes, hash_name: str = "sha256",
                backend: BackendSpec = None) -> bytes:
    """One-shot HMAC of ``data`` under ``key`` via the selected backend."""
    if not isinstance(hash_name, str):
        return Hmac(key, data, hash_name=hash_name).digest()
    return resolve_backend(backend).hmac_digest(hash_name, key, data)
