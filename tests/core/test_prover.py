"""Tests for the ERASMUS prover."""

import pytest

from repro.core import CollectRequest, ErasmusConfig, ErasmusProver, \
    ScheduleKind
from repro.sim import SimulationEngine


def test_manual_measurement_is_stored(erasmus_setup):
    prover, _verifier, _engine, _arch = erasmus_setup
    measurement = prover.take_measurement(25.0)
    assert measurement is not None
    assert prover.measurements_taken == 1
    assert prover.store.newest().timestamp == pytest.approx(25.0)


def test_attached_prover_follows_schedule(erasmus_setup):
    prover, _verifier, engine, _arch = erasmus_setup
    prover.attach(engine)
    engine.run(until=60.0)
    assert prover.measurements_taken == 6
    timestamps = sorted(m.timestamp for m in prover.store.all_measurements())
    assert timestamps == [pytest.approx(t) for t in
                          (10.0, 20.0, 30.0, 40.0, 50.0, 60.0)]


def test_measurement_events_recorded_in_trace(erasmus_setup):
    prover, _verifier, engine, _arch = erasmus_setup
    prover.attach(engine)
    engine.run(until=30.0)
    events = engine.trace.events("measurement")
    assert len(events) == 3
    assert all(event.details["device"] == "dev-under-test"
               for event in events)


def test_handle_collect_returns_latest_k(erasmus_setup):
    prover, verifier, engine, _arch = erasmus_setup
    prover.attach(engine)
    engine.run(until=60.0)
    response = prover.handle_collect(CollectRequest(k=3))
    assert len(response.measurements) == 3
    assert response.measurements[0].timestamp == pytest.approx(60.0)
    assert prover.collections_served == 1
    del verifier


def test_handle_collect_clamps_k_to_buffer(erasmus_setup):
    prover, _verifier, engine, _arch = erasmus_setup
    prover.attach(engine)
    engine.run(until=120.0)
    response = prover.handle_collect(CollectRequest(k=1000))
    assert len(response.measurements) <= prover.store.slots


def test_collection_involves_no_measurement(erasmus_setup):
    prover, _verifier, engine, _arch = erasmus_setup
    prover.attach(engine)
    engine.run(until=40.0)
    taken_before = prover.measurements_taken
    prover.handle_collect(CollectRequest(k=4))
    assert prover.measurements_taken == taken_before


def test_collection_runtime_much_smaller_than_measurement(erasmus_setup):
    prover, _verifier, _engine, arch = erasmus_setup
    collection = prover.collection_runtime()
    measurement = arch.cost_model.measurement_runtime(
        arch.measured_memory_bytes(), arch.mac_name)
    assert collection < measurement / 50


def test_ondemand_collection_costs_more(erasmus_setup):
    prover, _verifier, _engine, _arch = erasmus_setup
    assert prover.collection_runtime(on_demand=True) > \
        prover.collection_runtime(on_demand=False)


def test_critical_task_aborts_measurement(key, config, smartplus_arch):
    busy_windows = [(15.0, 25.0)]

    def critical(time: float) -> bool:
        return any(start <= time < end for start, end in busy_windows)

    prover = ErasmusProver(smartplus_arch, config, device_id="rt-device",
                           critical_task_active=critical)
    engine = SimulationEngine()
    prover.attach(engine)
    engine.run(until=60.0)
    # The measurement at t=20 collides with the busy window and is lost
    # (regular scheduling has no recovery).
    assert prover.measurements_aborted == 1
    assert prover.measurements_missed == 1
    assert prover.measurements_taken == 5


def test_lenient_schedule_recovers_aborted_measurement(key, smartplus_arch):
    config = ErasmusConfig(measurement_interval=10.0, collection_interval=60.0,
                           buffer_slots=8, schedule=ScheduleKind.LENIENT,
                           lenient_window_factor=1.5)
    busy_windows = [(19.0, 21.0)]

    def critical(time: float) -> bool:
        return any(start <= time < end for start, end in busy_windows)

    prover = ErasmusProver(smartplus_arch, config, device_id="rt-device",
                           critical_task_active=critical)
    engine = SimulationEngine()
    prover.attach(engine)
    engine.run(until=60.0)
    assert prover.measurements_aborted == 1
    assert prover.measurements_missed == 0
    # The aborted measurement was retried at the end of its window (t=25).
    timestamps = {round(m.timestamp, 1)
                  for m in prover.store.all_measurements()}
    assert 25.0 in timestamps


def test_busy_fraction_accounts_for_measurement_time(erasmus_setup):
    prover, _verifier, engine, _arch = erasmus_setup
    prover.attach(engine)
    engine.run(until=60.0)
    fraction = prover.busy_fraction(0.0, 60.0)
    assert 0 < fraction < 0.2
    assert prover.is_busy_at(10.0)
    with pytest.raises(ValueError):
        prover.busy_fraction(10.0, 10.0)


def test_irregular_prover_uses_round_robin_storage(key, smartplus_arch):
    config = ErasmusConfig(measurement_interval=10.0, collection_interval=60.0,
                           buffer_slots=16,
                           schedule=ScheduleKind.IRREGULAR)
    prover = ErasmusProver(smartplus_arch, config, device_id="irr",
                           scheduling_key=key)
    assert not prover.store.stateless
    engine = SimulationEngine()
    prover.attach(engine)
    engine.run(until=120.0)
    assert prover.store.overwrites == 0
    assert prover.measurements_taken == prover.store.occupancy()
