"""In-memory state store: the zero-overhead default backend.

Keeps the exact state a plain-dict verifier kept before stores existed,
behind the :class:`~repro.store.base.StateStore` contract, so the same
code path runs whether or not durability was asked for.  ``restore_state``
works (tests exercise the contract uniformly across backends) but of
course survives nothing: the "medium" dies with the process.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Any, Deque, Dict, List, Mapping, Optional

from repro.core.verification import Enrollment, VerificationReport
from repro.store.base import (
    RestoredState,
    Row,
    StateStore,
    StoreError,
    _drop_reset_collection_times,
    apply_report_row,
    snapshot_document,
    state_from_snapshot,
)

#: Reports retained by default; old ones age out once checkpointed.
DEFAULT_MAX_REPORTS = 10_000


class MemoryStore(StateStore):
    """Keep enrollments and reports in plain process memory.

    Report retention is bounded by ``max_reports`` (``None`` retains
    everything): a continuously collecting verifier must not grow
    without bound just because the default store keeps a journal.  The
    window is far larger than one collection round, and rounds
    checkpoint on completion, so aged-out reports are always already
    folded into the snapshot.
    """

    def __init__(self, max_reports: Optional[int] = DEFAULT_MAX_REPORTS
                 ) -> None:
        if max_reports is not None and max_reports <= 0:
            raise ValueError("max_reports must be positive")
        self._enrollments: Dict[str, Enrollment] = {}
        # Report-sequence number at each device's newest enrollment
        # write: replay must not advance past a deliberate reset.
        self._enrollment_seq: Dict[str, int] = {}
        self._reports: Deque[Row] = deque(maxlen=max_reports)
        self._appended = 0
        self._snapshot: Optional[Row] = None

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def save_enrollment(self, enrollment: Enrollment) -> None:
        self._enrollments[enrollment.device_id] = enrollment
        self._enrollment_seq[enrollment.device_id] = self._appended

    def append_report(self, report: VerificationReport) -> None:
        # Only the flat row is retained — keeping the report object
        # would pin its whole verdict/Measurement graph in memory for
        # up to max_reports collections.
        self._reports.append(report.to_row())
        self._appended += 1

    def checkpoint(self, health: Any,
                   last_collection_times: Mapping[str, float],
                   rounds_completed: int = 0) -> None:
        self._snapshot = snapshot_document(
            self._enrollments, health, last_collection_times,
            rounds_completed, journal_seq=self._appended)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def has_enrollment(self, device_id: str) -> bool:
        return device_id in self._enrollments

    def restore_state(self) -> RestoredState:
        state, journal_seq = state_from_snapshot(self._snapshot)
        # Enrollments are live (write-through), so prefer them over the
        # snapshot copies; the replay below then only rebuilds the
        # health aggregate and collection times for the journal tail.
        state.enrollments = dict(self._enrollments)
        first_retained = self._appended - len(self._reports)
        if journal_seq < first_retained:
            raise StoreError(
                f"{first_retained - journal_seq} un-checkpointed report(s) "
                f"aged out of the in-memory window; checkpoint more often "
                f"or raise max_reports")
        last_report_seq: Dict[str, int] = {}
        for offset, row in enumerate(
                islice(self._reports, journal_seq - first_retained, None)):
            seq = journal_seq + offset + 1
            device_id = str(row["device_id"])
            if int(row.get("measurements", 0)):
                last_report_seq[device_id] = seq
            advance = seq > self._enrollment_seq.get(device_id, 0)
            apply_report_row(row, state, advance=advance)
        _drop_reset_collection_times(state, self._enrollment_seq,
                                     last_report_seq)
        return state

    def device_history(self, device_id: str,
                       limit: Optional[int] = None) -> List[Row]:
        # History is bounded by the retention window (``max_reports``).
        rows = [dict(row) for row in self._reports
                if row["device_id"] == device_id]
        if limit is not None:
            rows = rows[-limit:]
        return rows

    def state_rows(self) -> Optional[Row]:
        return self._snapshot
