"""Fault injectors: wrappers around the fleet's seams, never edits.

Campaign cells exercise robustness by injecting faults *around* the
production code paths, through the same seams the fleet stack already
exposes:

* :class:`PartitionInjector` wraps any
  :class:`~repro.fleet.transport.Transport`: during configured
  engine-time windows a deterministic subset of devices simply never
  answers — the verifier sees lost responses, exactly like a real
  partition;
* :class:`CrashOnceStore` wraps any
  :class:`~repro.store.StateStore`: the N-th report journal write
  raises :class:`~repro.store.StoreError` once, killing the collection
  round mid-commit — the campaign runner then proves the deployment
  recovers via :meth:`repro.fleet.FleetVerifier.restore`;
* verifier downtime needs no wrapper at all: the runner skips the
  collection rounds that fall inside a downtime window, and the
  bounded measurement buffer decides what evidence survives.

Both wrappers are pure interpositions — the wrapped object is driven
unmodified, so the faults compose with every transport and store
backend.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.fleet.profiles import ProvisionedDevice
from repro.fleet.transport import Transport
from repro.store import StateStore, StoreError

Window = Tuple[float, float]


class PartitionInjector(Transport):
    """A transport wrapper that cuts a device subset during windows.

    The cut set is chosen deterministically per device from ``seed``
    (each device is cut with probability ``fraction``); while the
    engine clock is inside any of the ``windows``, exchanges with cut
    devices return ``None`` without ever reaching the wrapped
    transport.  Outside the windows the wrapper is transparent.
    """

    def __init__(self, inner: Transport, windows: Sequence[Window],
                 fraction: float = 0.5, seed: int = 0) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("the cut fraction must be within [0, 1]")
        for start, end in windows:
            if start < 0 or end <= start:
                raise ValueError(
                    f"partition window {(start, end)!r} must satisfy "
                    f"0 <= start < end")
        self.inner = inner
        self.windows: List[Window] = [(float(start), float(end))
                                      for start, end in windows]
        self.fraction = fraction
        self.seed = seed
        #: Exchanges dropped by this injector (not by the network).
        self.dropped_exchanges = 0
        self._cut_cache: Dict[str, bool] = {}

    # -- passthrough attributes the collection stack introspects -------
    @property
    def name(self) -> str:  # type: ignore[override]
        return f"partitioned({getattr(self.inner, 'name', 'transport')})"

    @property
    def engine(self):
        return getattr(self.inner, "engine", None)

    @property
    def concurrent_collections(self) -> bool:  # type: ignore[override]
        return getattr(self.inner, "concurrent_collections", False)

    @property
    def stale_responses_rejected(self) -> int:
        return getattr(self.inner, "stale_responses_rejected", 0)

    # -- the fault ------------------------------------------------------
    def is_cut(self, device_id: str) -> bool:
        """True when this device belongs to the partitioned subset."""
        cut = self._cut_cache.get(device_id)
        if cut is None:
            cut = random.Random(
                f"{self.seed}/{device_id}").random() < self.fraction
            self._cut_cache[device_id] = cut
        return cut

    def partition_active(self, time: Optional[float] = None) -> bool:
        """True when ``time`` (default: engine now) is inside a window."""
        if time is None:
            engine = self.engine
            time = engine.now if engine is not None else 0.0
        return any(start <= time < end for start, end in self.windows)

    def _drops(self, device_id: str) -> bool:
        return self.partition_active() and self.is_cut(device_id)

    # -- Transport contract --------------------------------------------
    def register(self, device: ProvisionedDevice) -> None:
        self.inner.register(device)

    def exchange(self, device_id: str, payload: bytes) -> Optional[bytes]:
        if self._drops(device_id):
            self.dropped_exchanges += 1
            return None
        return self.inner.exchange(device_id, payload)

    def exchange_many(self, requests: Mapping[str, bytes]
                      ) -> Dict[str, Optional[bytes]]:
        passed = {device_id: payload
                  for device_id, payload in requests.items()
                  if not self._drops(device_id)}
        dropped = [device_id for device_id in requests
                   if device_id not in passed]
        self.dropped_exchanges += len(dropped)
        responses: Dict[str, Optional[bytes]] = \
            self.inner.exchange_many(passed) if passed else {}
        return {device_id: responses.get(device_id)
                for device_id in requests}


class CrashOnceStore(StateStore):
    """A state store whose N-th report write fails — exactly once.

    ``crash_after_reports`` counts successful journal appends before
    the crash: append number ``crash_after_reports + 1`` raises
    :class:`StoreError` without touching the wrapped store, and every
    append after that goes through again.  Everything else is a pure
    passthrough, so :meth:`repro.fleet.FleetVerifier.restore` can
    resume from the very store that "crashed".
    """

    def __init__(self, inner: StateStore, crash_after_reports: int) -> None:
        if crash_after_reports < 0:
            raise ValueError("crash_after_reports must be non-negative")
        self.inner = inner
        self.crash_after_reports = crash_after_reports
        self.reports_appended = 0
        self.crashed = False

    def save_enrollment(self, enrollment) -> None:
        self.inner.save_enrollment(enrollment)

    def append_report(self, report) -> None:
        if not self.crashed and \
                self.reports_appended == self.crash_after_reports:
            self.crashed = True
            raise StoreError(
                f"injected store crash after {self.reports_appended} "
                f"journaled report(s)")
        self.inner.append_report(report)
        self.reports_appended += 1

    def checkpoint(self, health, last_collection_times,
                   rounds_completed: int = 0) -> None:
        self.inner.checkpoint(health, last_collection_times,
                              rounds_completed=rounds_completed)

    def has_enrollment(self, device_id: str) -> bool:
        return self.inner.has_enrollment(device_id)

    def restore_state(self):
        return self.inner.restore_state()

    def device_history(self, device_id: str, limit: Optional[int] = None):
        return self.inner.device_history(device_id, limit=limit)

    def state_rows(self):
        return self.inner.state_rows()

    def flush(self) -> None:
        self.inner.flush()

    def close(self) -> None:
        self.inner.close()
