"""Tests for the HMAC construction over the from-scratch hashes."""

import hashlib
import hmac as stdlib_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hmac import Hmac, hmac_digest


def test_rfc4231_case_1():
    key = b"\x0b" * 20
    data = b"Hi There"
    expected = ("b0344c61d8db38535ca8afceaf0bf12b"
                "881dc200c9833da726e9376c2e32cff7")
    assert hmac_digest(key, data, "sha256").hex() == expected


def test_rfc2202_sha1_case_2():
    assert hmac_digest(b"Jefe", b"what do ya want for nothing?",
                       "sha1").hex() == \
        "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"


def test_long_key_is_hashed_first():
    key = b"\xaa" * 131
    data = b"Test Using Larger Than Block-Size Key - Hash Key First"
    assert hmac_digest(key, data, "sha256") == \
        stdlib_hmac.new(key, data, hashlib.sha256).digest()


def test_streaming_equals_one_shot():
    mac = Hmac(b"key", hash_name="sha256")
    mac.update(b"part one ")
    mac.update(b"part two")
    assert mac.digest() == hmac_digest(b"key", b"part one part two")


def test_copy_is_independent():
    mac = Hmac(b"key", b"base", hash_name="sha256")
    clone = mac.copy()
    clone.update(b"-more")
    assert mac.digest() == hmac_digest(b"key", b"base")
    assert clone.digest() == hmac_digest(b"key", b"base-more")


def test_unknown_hash_rejected():
    with pytest.raises(ValueError):
        Hmac(b"key", hash_name="md5")


def test_name_and_sizes():
    mac = Hmac(b"key", hash_name="sha1")
    assert mac.name == "hmac-sha1"
    assert mac.digest_size == 20
    assert mac.block_size == 64


def test_total_compressions_exceeds_inner():
    mac = Hmac(b"key", b"x" * 500, hash_name="sha256")
    assert mac.total_compressions() > mac.compressions


@settings(max_examples=60, deadline=None)
@given(st.binary(min_size=1, max_size=100),
       st.binary(min_size=0, max_size=1500),
       st.sampled_from(["sha1", "sha256"]))
def test_matches_stdlib(key, data, hash_name):
    reference = stdlib_hmac.new(
        key, data, hashlib.sha1 if hash_name == "sha1" else hashlib.sha256)
    assert hmac_digest(key, data, hash_name) == reference.digest()
