"""The stdlib HTTP scrape endpoint."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.verification import DeviceStatus, VerificationReport
from repro.obs import (
    LostBudgetRule,
    MetricsRegistry,
    MetricsServer,
    StreamingHealthSink,
)
from repro.obs.server import EXPOSITION_CONTENT_TYPE


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers.get("Content-Type"), \
            response.read().decode("utf-8")


def test_metrics_endpoint_serves_the_exposition():
    registry = MetricsRegistry()
    registry.counter("up_total").inc(3)
    with MetricsServer(registry) as server:
        status, content_type, body = _get(server.metrics_url)
    assert status == 200
    assert content_type == EXPOSITION_CONTENT_TYPE
    assert "up_total 3" in body
    assert body == registry.render()


def test_slo_endpoint_serves_violations_as_json():
    sink = StreamingHealthSink([LostBudgetRule(0)])
    sink.emit(VerificationReport(device_id="d", collection_time=0.0,
                                 status=DeviceStatus.NO_DATA))
    with MetricsServer(MetricsRegistry(), health=sink) as server:
        status, content_type, body = _get(server.url + "/slo")
    assert status == 200
    assert content_type == "application/json"
    (row,) = json.loads(body)
    assert row["rule"] == "lost_budget"


def test_slo_endpoint_without_sink_is_empty_list():
    with MetricsServer(MetricsRegistry()) as server:
        _status, _ct, body = _get(server.url + "/slo")
    assert json.loads(body) == []


def test_healthz_and_unknown_path():
    with MetricsServer(MetricsRegistry()) as server:
        status, _ct, body = _get(server.url + "/healthz")
        assert (status, body) == (200, "ok\n")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404


def test_close_is_idempotent_and_releases_the_socket():
    server = MetricsServer(MetricsRegistry())
    url = server.metrics_url
    server.close()
    server.close()
    assert server.closed
    with pytest.raises(urllib.error.URLError):
        urllib.request.urlopen(url, timeout=0.5)


def test_access_log_is_silent_by_default(capsys):
    registry = MetricsRegistry()
    registry.counter("c").inc()
    with MetricsServer(registry) as server:
        _get(server.metrics_url)
        _get(server.url + "/healthz")
    captured = capsys.readouterr()
    assert captured.err == ""  # no BaseHTTPRequestHandler stderr spam


def test_access_log_routes_to_the_callback():
    lines = []
    with MetricsServer(MetricsRegistry(), log=lines.append) as server:
        _get(server.metrics_url)
    assert any("/metrics" in line for line in lines)


def test_close_while_scrapes_are_in_flight():
    """Regression: hammer /metrics from several threads during close().

    Every request must either succeed or fail with a socket/URL error —
    never hang, never corrupt the server — and repeated/concurrent
    close() calls must all return.
    """
    import threading

    registry = MetricsRegistry()
    registry.counter("busy_total").inc()
    server = MetricsServer(registry)
    url = server.metrics_url
    stop = threading.Event()
    outcomes = {"ok": 0, "refused": 0}
    lock = threading.Lock()

    def hammer():
        while not stop.is_set():
            try:
                with urllib.request.urlopen(url, timeout=2) as response:
                    assert response.status == 200
                    response.read()
                with lock:
                    outcomes["ok"] += 1
            except (urllib.error.URLError, ConnectionError, OSError):
                with lock:
                    outcomes["refused"] += 1

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    # Let the hammering get going, then close mid-flight — twice, from
    # two racing threads.
    deadline = 200
    while outcomes["ok"] == 0 and deadline > 0:
        deadline -= 1
        import time
        time.sleep(0.005)
    closers = [threading.Thread(target=server.close) for _ in range(2)]
    for closer in closers:
        closer.start()
    for closer in closers:
        closer.join(timeout=10)
        assert not closer.is_alive(), "close() hung"
    stop.set()
    for thread in threads:
        thread.join(timeout=10)
        assert not thread.is_alive(), "a scraper hung"
    assert server.closed
    assert outcomes["ok"] > 0, "the hammer never got a scrape through"
    # The socket really is released.
    with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
        urllib.request.urlopen(url, timeout=0.5)
