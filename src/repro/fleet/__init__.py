"""Fleet-scale attestation service: the canonical public API.

The paper's headline property — collections cheap enough to run
continuously — only matters at scale, so this package treats
attestation as a many-device service rather than a pairwise exchange:

* :mod:`repro.fleet.profiles` — :class:`DeviceProfile`: one-call
  provisioning of SMART+ / HYDRA devices (key, firmware, schedule,
  MAC, crypto backend);
* :mod:`repro.fleet.transport` — :class:`Transport` implementations
  (in-process, simulated packet network, swarm relay tree) that all
  speak the canonical wire encoding, plus the awaitable
  :class:`AsyncTransport` seam (:func:`as_async_transport`) the
  collection pipeline drives;
* :mod:`repro.fleet.service` — :class:`FleetVerifier` (an async-first
  ``collect_all`` pipeline over the stateless verification core, with
  the synchronous call kept as a thin shim), the
  :class:`ShardedFleetVerifier` (N shard workers, merged
  :class:`FleetHealth`) and the :class:`Fleet` facade;
* :mod:`repro.fleet.sinks` — pluggable report sinks (in-memory, JSONL,
  :class:`FleetHealth` aggregation) and per-round :class:`RoundStats`.

Verifier state can be made durable by passing a
:class:`repro.store.StateStore` backend (``store=``) to
:meth:`Fleet.provision` / :class:`FleetVerifier`; a crashed verifier is
then resumed with :meth:`FleetVerifier.restore` — see
:mod:`repro.store`.

Quickstart::

    from repro.fleet import DeviceProfile, Fleet

    profile = DeviceProfile.smartplus(firmware=b"pump-fw-v1",
                                      measurement_interval=60.0,
                                      collection_interval=600.0)
    fleet = Fleet.provision(profile, 1000, master_secret=b"factory-secret")
    fleet.run_until(600.0)
    reports = fleet.collect_all()
    print(fleet.health.summary())

The legacy single-device entry points
(:class:`repro.core.ErasmusProver` / :class:`repro.core.ErasmusVerifier`)
keep working as thin shims over the same verification core.
"""

from repro.fleet.profiles import (
    HYDRA,
    SMARTPLUS,
    DeviceProfile,
    ProvisionedDevice,
    derive_device_key,
)
from repro.fleet.service import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_MAX_INFLIGHT_SHARDS,
    TRANSPORT_FACTORIES,
    Fleet,
    FleetVerifier,
    RoundReports,
    ShardedFleetVerifier,
)
from repro.core.verification import DuplicateEnrollmentError
from repro.fleet.sinks import (
    FleetHealth,
    FleetHealthSink,
    JsonlSink,
    MemorySink,
    ReportSink,
    RoundStats,
    SinkFanout,
    report_to_row,
)
from repro.fleet.transport import (
    AsyncTransport,
    InProcessTransport,
    SimulatedNetworkTransport,
    SocketTransport,
    SwarmRelayTransport,
    SyncTransportAdapter,
    Transport,
    as_async_transport,
    serve_request,
)
from repro.fleet.workers import WorkerCrashed, WorkerError, WorkerPool

__all__ = [
    "AsyncTransport",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_MAX_INFLIGHT_SHARDS",
    "DeviceProfile",
    "DuplicateEnrollmentError",
    "Fleet",
    "FleetHealth",
    "FleetHealthSink",
    "FleetVerifier",
    "HYDRA",
    "InProcessTransport",
    "JsonlSink",
    "MemorySink",
    "ProvisionedDevice",
    "ReportSink",
    "RoundReports",
    "RoundStats",
    "SMARTPLUS",
    "ShardedFleetVerifier",
    "SimulatedNetworkTransport",
    "SinkFanout",
    "SocketTransport",
    "SwarmRelayTransport",
    "SyncTransportAdapter",
    "TRANSPORT_FACTORIES",
    "Transport",
    "WorkerCrashed",
    "WorkerError",
    "WorkerPool",
    "as_async_transport",
    "derive_device_key",
    "report_to_row",
    "serve_request",
]
