"""Device profiles: one-call provisioning of attestation-ready devices.

A :class:`DeviceProfile` captures everything needed to stamp out one
class of prover — security architecture, measured-memory size, firmware
image, MAC choice, measurement schedule and crypto backend — so that a
fleet of thousands of homogeneous devices can be provisioned with a
single call instead of the historical build-architecture / load-image /
hash-memory / construct-prover / enroll dance.

Per-device keys are derived from a fleet master secret with the
deployment MAC (``K_i = MAC_master(label || device_id)``), mirroring
how real deployments diversify a factory secret per unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.arch.base import SecurityArchitecture, hash_for_mac
from repro.core.config import ErasmusConfig, ScheduleKind
from repro.core.prover import ErasmusProver
from repro.crypto.mac import get_mac
from repro.hydra import build_hydra_architecture
from repro.smartplus import build_smartplus_architecture

#: Architecture families a profile can provision.
SMARTPLUS = "smart+"
HYDRA = "hydra"

_KEY_DERIVATION_LABEL = b"erasmus-fleet-device-key/"


def derive_device_key(master_secret: bytes, device_id: str,
                      mac_name: str = "keyed-blake2s") -> bytes:
    """Derive one device's shared key ``K`` from the fleet master secret."""
    if not master_secret:
        raise ValueError("the fleet master secret must be non-empty")
    return get_mac(mac_name).mac(
        master_secret, _KEY_DERIVATION_LABEL + device_id.encode())


@dataclass(frozen=True)
class DeviceProfile:
    """Blueprint for provisioning one class of ERASMUS device.

    Attributes
    ----------
    architecture:
        ``"smart+"`` (low-end, ROM-anchored) or ``"hydra"`` (medium-end,
        seL4-anchored).
    firmware:
        Application image loaded into the measured region at
        provisioning time; its digest becomes the device's first
        known-good state.
    application_size:
        Size of the measured application region in bytes.
    measurement_buffer_size:
        Rolling-buffer region size; ``None`` picks the architecture's
        default.
    config:
        Deployment parameters (``T_M``, ``T_C``, ``n``, schedule, MAC,
        crypto backend).  :meth:`with_config` and the factory
        classmethods build sensible ones.
    """

    architecture: str = SMARTPLUS
    firmware: bytes = b"reference-firmware-v1"
    application_size: int = 1024
    measurement_buffer_size: Optional[int] = None
    config: ErasmusConfig = field(default_factory=ErasmusConfig)

    def __post_init__(self) -> None:
        if self.architecture not in (SMARTPLUS, HYDRA):
            raise ValueError(
                f"unknown architecture {self.architecture!r}; "
                f"expected {SMARTPLUS!r} or {HYDRA!r}")
        if len(self.firmware) > self.application_size:
            raise ValueError(
                f"firmware of {len(self.firmware)} bytes does not fit the "
                f"{self.application_size}-byte application region")

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @staticmethod
    def _build_config(config: Optional[ErasmusConfig],
                      overrides) -> ErasmusConfig:
        if config is not None and overrides:
            # Applying overrides on top of an explicit config would be
            # ambiguous; silently dropping either side is worse.
            raise ValueError(
                "pass either config= or keyword overrides, not both "
                f"(got overrides {sorted(overrides)})")
        if config is not None:
            return config
        return ErasmusConfig(**overrides)

    @classmethod
    def smartplus(cls, firmware: bytes = b"reference-firmware-v1",
                  application_size: int = 1024,
                  config: Optional[ErasmusConfig] = None,
                  **config_overrides) -> "DeviceProfile":
        """A low-end SMART+ profile (MSP430-class, small measured region)."""
        return cls(architecture=SMARTPLUS, firmware=firmware,
                   application_size=application_size,
                   config=cls._build_config(config, config_overrides))

    @classmethod
    def hydra(cls, firmware: bytes = b"reference-firmware-v1",
              application_size: int = 64 * 1024,
              config: Optional[ErasmusConfig] = None,
              **config_overrides) -> "DeviceProfile":
        """A medium-end HYDRA profile (i.MX6-class, larger measured region)."""
        return cls(architecture=HYDRA, firmware=firmware,
                   application_size=application_size,
                   measurement_buffer_size=16 * 1024,
                   config=cls._build_config(config, config_overrides))

    def with_config(self, **overrides) -> "DeviceProfile":
        """Copy of this profile with config fields replaced."""
        return replace(self, config=replace(self.config, **overrides))

    # ------------------------------------------------------------------
    # Provisioning
    # ------------------------------------------------------------------
    def build_architecture(self, key: bytes) -> SecurityArchitecture:
        """Build and image the security architecture for one device."""
        builder = build_smartplus_architecture \
            if self.architecture == SMARTPLUS else build_hydra_architecture
        kwargs = {}
        if self.measurement_buffer_size is not None:
            kwargs["measurement_buffer_size"] = self.measurement_buffer_size
        arch: SecurityArchitecture = builder(
            key, mac_name=self.config.mac_name,
            application_size=self.application_size, **kwargs)
        arch.load_application(self.firmware)
        return arch

    def provision(self, device_id: str, key: Optional[bytes] = None,
                  master_secret: Optional[bytes] = None,
                  critical_task_active: Optional[Callable[[float], bool]]
                  = None) -> "ProvisionedDevice":
        """Provision one ready-to-attest device.

        Exactly one of ``key`` (an explicit per-device key) or
        ``master_secret`` (per-device key derived from it) must be
        given.  Returns the prover, its architecture, the shared key and
        the healthy reference digest, bundled for enrollment.
        """
        if (key is None) == (master_secret is None):
            raise ValueError("pass exactly one of key= or master_secret=")
        if key is None:
            assert master_secret is not None
            key = derive_device_key(master_secret, device_id,
                                    self.config.mac_name)
        architecture = self.build_architecture(key)
        healthy_digest = hash_for_mac(
            self.config.mac_name, architecture.crypto_backend)(
                architecture.read_measured_memory())
        prover = ErasmusProver(architecture, self.config,
                               device_id=device_id, scheduling_key=key,
                               critical_task_active=critical_task_active)
        return ProvisionedDevice(device_id=device_id, key=key,
                                 profile=self, architecture=architecture,
                                 prover=prover,
                                 healthy_digest=healthy_digest)


@dataclass
class ProvisionedDevice:
    """One provisioned device: prover, architecture and enrollment facts."""

    device_id: str
    key: bytes
    profile: DeviceProfile
    architecture: SecurityArchitecture
    prover: ErasmusProver
    healthy_digest: bytes

    def load_application(self, image: bytes) -> None:
        """Replace the application image (firmware update or infection)."""
        self.architecture.load_application(image)

    def current_digest(self) -> bytes:
        """Digest of the currently loaded measured memory."""
        return hash_for_mac(self.profile.config.mac_name,
                            self.architecture.crypto_backend)(
                                self.architecture.read_measured_memory())
