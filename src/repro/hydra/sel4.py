"""A functional model of the seL4 mechanisms HYDRA relies on.

This is not a kernel; it is the minimal capability / process / priority
model needed to express HYDRA's isolation argument in executable form:

* every memory object is referenced through :class:`Capability` objects
  carrying access :class:`Right` s;
* a :class:`Process` can only touch an object if it holds a capability
  with the needed right — the kernel's :meth:`Microkernel.check_access`
  is the single enforcement point;
* processes have fixed scheduling priorities; the runnable process with
  the highest priority runs (HYDRA gives PrAtt the maximum priority so
  its measurements cannot be pre-empted by user processes);
* capabilities can only be granted by a process that itself holds the
  capability with the ``GRANT`` right, mirroring seL4's take-grant
  discipline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional


class Right(enum.Flag):
    """Access rights carried by a capability."""

    READ = enum.auto()
    WRITE = enum.auto()
    GRANT = enum.auto()
    ALL = READ | WRITE | GRANT


class CapabilityError(Exception):
    """An operation was attempted without the required capability."""


@dataclass(frozen=True)
class Capability:
    """An unforgeable reference to a kernel object with specific rights."""

    object_name: str
    rights: Right

    def allows(self, right: Right) -> bool:
        """True when this capability carries (at least) ``right``."""
        return bool(self.rights & right == right)

    def diminished(self, rights: Right) -> "Capability":
        """Return a copy restricted to the intersection of rights."""
        return Capability(self.object_name, self.rights & rights)


@dataclass
class Process:
    """A user-space process under the microkernel."""

    name: str
    priority: int
    capabilities: Dict[str, Capability] = field(default_factory=dict)
    parent: Optional[str] = None
    alive: bool = True

    def holds(self, object_name: str, right: Right) -> bool:
        """True when the process holds a capability with ``right``."""
        capability = self.capabilities.get(object_name)
        return capability is not None and capability.allows(right)


class Microkernel:
    """Process table, capability enforcement and priority scheduling."""

    MAX_PRIORITY = 255

    def __init__(self) -> None:
        self._processes: Dict[str, Process] = {}
        self._objects: set[str] = set()
        self.access_denials: list[tuple[str, str, str]] = []

    # ------------------------------------------------------------------
    # Objects and processes
    # ------------------------------------------------------------------
    def register_object(self, name: str) -> None:
        """Register a kernel object (a memory region, a TCB, a device)."""
        if name in self._objects:
            raise ValueError(f"object {name!r} already registered")
        self._objects.add(name)

    def objects(self) -> set[str]:
        """Names of all registered kernel objects."""
        return set(self._objects)

    def create_initial_process(self, name: str, priority: int,
                               capabilities: Iterable[Capability]) -> Process:
        """Create the first user-space process (HYDRA's PrAtt).

        The initial process is created by the kernel at boot and may be
        handed capabilities to any registered object.
        """
        if self._processes:
            raise CapabilityError(
                "the initial process must be created before any other")
        return self._add_process(name, priority, capabilities, parent=None)

    def spawn(self, parent_name: str, name: str, priority: int,
              capabilities: Iterable[Capability] = ()) -> Process:
        """Spawn a child process on behalf of ``parent_name``.

        HYDRA's rule: children must run at strictly lower priority than
        the attestation process, and the parent can only delegate
        capabilities it itself holds with the GRANT right.
        """
        parent = self.process(parent_name)
        if not parent.alive:
            raise CapabilityError(f"parent process {parent_name!r} is dead")
        if priority >= parent.priority:
            raise CapabilityError(
                "child processes must run at a lower priority than their parent")
        granted = []
        for capability in capabilities:
            if not parent.holds(capability.object_name, Right.GRANT):
                raise CapabilityError(
                    f"{parent_name!r} cannot grant capability to "
                    f"{capability.object_name!r} without GRANT right")
            parent_cap = parent.capabilities[capability.object_name]
            granted.append(capability.diminished(parent_cap.rights))
        return self._add_process(name, priority, granted, parent=parent_name)

    def _add_process(self, name: str, priority: int,
                     capabilities: Iterable[Capability],
                     parent: Optional[str]) -> Process:
        if name in self._processes:
            raise ValueError(f"process {name!r} already exists")
        if not 0 <= priority <= self.MAX_PRIORITY:
            raise ValueError("priority must be in [0, 255]")
        process = Process(name=name, priority=priority, parent=parent)
        for capability in capabilities:
            if capability.object_name not in self._objects:
                raise ValueError(
                    f"capability references unknown object "
                    f"{capability.object_name!r}")
            process.capabilities[capability.object_name] = capability
        self._processes[name] = process
        return process

    def process(self, name: str) -> Process:
        """Look up a process by name."""
        try:
            return self._processes[name]
        except KeyError as exc:
            raise KeyError(f"no process named {name!r}") from exc

    def processes(self) -> list[Process]:
        """All processes, highest priority first."""
        return sorted(self._processes.values(),
                      key=lambda process: -process.priority)

    def kill(self, name: str) -> None:
        """Terminate a process (its capabilities are revoked)."""
        process = self.process(name)
        process.alive = False
        process.capabilities.clear()

    # ------------------------------------------------------------------
    # Enforcement and scheduling
    # ------------------------------------------------------------------
    def check_access(self, process_name: str, object_name: str,
                     right: Right) -> bool:
        """Check (and record) whether a process may access an object."""
        process = self.process(process_name)
        if process.alive and process.holds(object_name, right):
            return True
        self.access_denials.append((process_name, object_name, right.name or ""))
        return False

    def require_access(self, process_name: str, object_name: str,
                       right: Right) -> None:
        """Like :meth:`check_access` but raises on denial."""
        if not self.check_access(process_name, object_name, right):
            raise CapabilityError(
                f"process {process_name!r} lacks {right!r} on {object_name!r}")

    def exclusive_holder(self, object_name: str,
                         right: Right = Right.READ) -> Optional[str]:
        """Name of the only live process holding ``right`` on the object.

        Returns ``None`` when zero or more than one process holds it.
        HYDRA's key-protection property is exactly "PrAtt is the
        exclusive holder of READ on the key region".
        """
        holders = [process.name for process in self._processes.values()
                   if process.alive and process.holds(object_name, right)]
        return holders[0] if len(holders) == 1 else None

    def schedule(self) -> Optional[Process]:
        """Return the runnable process with the highest priority."""
        runnable = [process for process in self._processes.values()
                    if process.alive]
        if not runnable:
            return None
        return max(runnable, key=lambda process: process.priority)
