"""Tests for the MAC registry and the constant-time comparison."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.constant_time import constant_time_compare
from repro.crypto.mac import MacAlgorithm, available_macs, get_mac, register_mac


def test_three_paper_macs_are_registered():
    names = {descriptor.name for descriptor in available_macs()}
    assert {"hmac-sha1", "hmac-sha256", "keyed-blake2s"} <= names


def test_sha1_is_marked_deprecated():
    descriptors = {d.name: d for d in available_macs()}
    assert descriptors["hmac-sha1"].deprecated
    assert not descriptors["hmac-sha256"].deprecated


def test_lookup_is_case_insensitive():
    assert get_mac("HMAC-SHA256") is get_mac("hmac-sha256")


def test_unknown_mac_raises():
    with pytest.raises(ValueError, match="unknown MAC"):
        get_mac("poly1305")


def test_mac_and_verify_roundtrip():
    for descriptor in available_macs():
        algorithm = get_mac(descriptor.name)
        tag = algorithm.mac(b"secret key", b"message")
        assert len(tag) == algorithm.digest_size
        assert algorithm.verify(b"secret key", b"message", tag)
        assert not algorithm.verify(b"secret key", b"other message", tag)
        assert not algorithm.verify(b"wrong key", b"message", tag)


def test_compression_count_monotonic_in_length():
    algorithm = get_mac("keyed-blake2s")
    counts = [algorithm.compression_count(length)
              for length in (0, 64, 128, 1024, 10 * 1024)]
    assert counts == sorted(counts)
    assert counts[0] >= 1


def test_compression_count_rejects_negative():
    with pytest.raises(ValueError):
        get_mac("hmac-sha256").compression_count(-1)


def test_register_custom_mac():
    def xor_mac(key: bytes, data: bytes) -> bytes:
        return bytes((sum(key) + sum(data)) % 256 for _ in range(4))

    register_mac(MacAlgorithm("test-xor-mac", 16, 4, xor_mac, extra_blocks=0))
    assert get_mac("test-xor-mac").mac(b"k", b"d") == xor_mac(b"k", b"d")


def test_constant_time_compare_basics():
    assert constant_time_compare(b"same bytes", b"same bytes")
    assert not constant_time_compare(b"same bytes", b"Same bytes")
    assert not constant_time_compare(b"short", b"longer value")
    assert constant_time_compare(b"", b"")


def test_constant_time_compare_type_check():
    with pytest.raises(TypeError):
        constant_time_compare("text", b"bytes")


@settings(max_examples=50, deadline=None)
@given(st.binary(max_size=64), st.binary(max_size=64))
def test_constant_time_compare_matches_equality(left, right):
    assert constant_time_compare(left, right) == (left == right)
