"""Tests for the device cost models (calibration and shape)."""

import pytest

from repro.hw.devices import ApplicationCPUModel, MCUModel, RuntimeBreakdown


class TestMCUModel:
    def test_calibrated_endpoints_match_paper(self):
        mcu = MCUModel()
        sha256_runtime = mcu.measurement_runtime(10 * 1024, "hmac-sha256")
        blake2s_runtime = mcu.measurement_runtime(10 * 1024, "keyed-blake2s")
        assert sha256_runtime == pytest.approx(7.0, rel=0.05)
        assert blake2s_runtime == pytest.approx(5.0, rel=0.05)

    def test_runtime_linear_in_memory(self):
        mcu = MCUModel()
        small = mcu.measurement_runtime(2 * 1024, "keyed-blake2s")
        large = mcu.measurement_runtime(8 * 1024, "keyed-blake2s")
        assert large / small == pytest.approx(4.0, rel=0.1)

    def test_erasmus_cheaper_than_on_demand_by_request_auth(self):
        mcu = MCUModel()
        erasmus = mcu.attestation_runtime(4096, "hmac-sha256",
                                          on_demand=False)
        on_demand = mcu.attestation_runtime(4096, "hmac-sha256",
                                            on_demand=True)
        assert on_demand > erasmus
        assert on_demand - erasmus == pytest.approx(
            mcu.request_auth_runtime("hmac-sha256"), rel=1e-9)

    def test_runtime_breakdown_totals(self):
        breakdown = MCUModel().runtime_breakdown(1024, "keyed-blake2s",
                                                 on_demand=True)
        assert isinstance(breakdown, RuntimeBreakdown)
        assert breakdown.total == pytest.approx(
            breakdown.request_auth + breakdown.measurement +
            breakdown.fixed_overhead)
        assert breakdown.request_auth > 0

    def test_unknown_mac_rejected(self):
        with pytest.raises(ValueError):
            MCUModel().measurement_runtime(1024, "hmac-sha512")
        with pytest.raises(ValueError, match="no calibration"):
            MCUModel(cycles_per_block={"hmac-sha256": 1000.0}) \
                .measurement_runtime(1024, "keyed-blake2s")

    def test_negative_memory_rejected(self):
        with pytest.raises(ValueError):
            MCUModel().measurement_cycles(-1, "hmac-sha256")

    def test_generic_collection_runtime_is_small_but_positive(self):
        breakdown = MCUModel().collection_runtime(10 * 1024, "keyed-blake2s",
                                                  on_demand=False)
        assert 0 < breakdown["total"] < 0.01
        assert breakdown["compute_measurement"] == 0.0


class TestApplicationCPUModel:
    def test_calibrated_endpoint_matches_table2(self):
        model = ApplicationCPUModel()
        runtime = model.measurement_runtime(10 * 1024 * 1024, "keyed-blake2s")
        assert runtime == pytest.approx(0.2856, rel=0.02)

    def test_collection_runtime_erasmus_matches_table2(self):
        model = ApplicationCPUModel()
        breakdown = model.collection_runtime(10 * 1024 * 1024,
                                             "keyed-blake2s", on_demand=False)
        assert breakdown["verify_request"] == 0.0
        assert breakdown["compute_measurement"] == 0.0
        assert breakdown["construct_packet"] == pytest.approx(3e-6)
        assert breakdown["send_packet"] == pytest.approx(12e-6)
        assert breakdown["total"] == pytest.approx(15e-6)

    def test_collection_runtime_erasmus_od_dominated_by_measurement(self):
        model = ApplicationCPUModel()
        breakdown = model.collection_runtime(10 * 1024 * 1024,
                                             "keyed-blake2s", on_demand=True)
        assert breakdown["compute_measurement"] == pytest.approx(0.2856,
                                                                 rel=0.02)
        assert breakdown["total"] == pytest.approx(
            breakdown["compute_measurement"], rel=0.01)

    def test_collection_vs_measurement_factor_exceeds_3000(self):
        model = ApplicationCPUModel()
        measurement = model.measurement_runtime(10 * 1024 * 1024,
                                                "keyed-blake2s")
        collection = model.collection_runtime(
            10 * 1024 * 1024, "keyed-blake2s", on_demand=False)["total"]
        assert measurement / collection >= 3000

    def test_supported_macs_listed(self):
        assert "keyed-blake2s" in ApplicationCPUModel().supported_macs()

    def test_invalid_clock_rejected(self):
        with pytest.raises(ValueError):
            ApplicationCPUModel(clock_hz=0.0)
