"""A tiny stdlib HTTP endpoint serving the metrics exposition.

One daemon thread runs a :class:`http.server.ThreadingHTTPServer`
scraping three paths:

* ``GET /metrics`` — the Prometheus text exposition of the bound
  :class:`~repro.obs.metrics.MetricsRegistry` (renders lock-free, so a
  scrape landing mid-round never blocks the collection hot path);
* ``GET /slo`` — the bound :class:`~repro.obs.slo.StreamingHealthSink`
  violations as JSON (empty list without a sink);
* ``GET /healthz`` — liveness (``ok``).

Binding port 0 picks a free ephemeral port — the test-suite default —
and :attr:`MetricsServer.url` reports where the scrape landed.

The stdlib handler normally prints one access-log line per request to
stderr; scrape-heavy runs (a 1 s Prometheus interval against a
benchmark) would drown real output in it, so the handler is silent by
default.  Pass ``log=callable`` to route the formatted access-log and
error lines somewhere deliberate instead (a list's ``append``, a
logger method); the callback runs on the scrape's handler thread and
must not raise.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import StreamingHealthSink

#: Content type of the Prometheus text exposition format.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serve one registry (and optional SLO sink) over HTTP.

    The server starts on construction and runs on a daemon thread;
    :meth:`close` shuts it down idempotently — it is thread-safe and
    safe to call while scrapes are in flight (in-flight handlers run
    on daemon threads and finish or die with their sockets; the
    listening socket closes after the serve loop has stopped, so no
    new scrape can land half-accepted).  Also usable as a context
    manager.
    """

    def __init__(self, registry: MetricsRegistry,
                 host: str = "127.0.0.1", port: int = 0,
                 health: Optional[StreamingHealthSink] = None,
                 log: Optional[Callable[[str], None]] = None) -> None:
        self.registry = registry
        self.health = health
        self.log = log
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib contract)
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = server.registry.render().encode("utf-8")
                    self._reply(200, EXPOSITION_CONTENT_TYPE, body)
                elif path == "/slo":
                    rows = server.health.violation_rows() \
                        if server.health is not None else []
                    body = json.dumps(rows, sort_keys=True).encode("utf-8")
                    self._reply(200, "application/json", body)
                elif path == "/healthz":
                    self._reply(200, "text/plain; charset=utf-8", b"ok\n")
                else:
                    self._reply(404, "text/plain; charset=utf-8",
                                b"not found\n")

            def _reply(self, status: int, content_type: str,
                       body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args) -> None:
                # Never the stdlib default (stderr spam); the optional
                # callback gets the formatted line instead.
                if server.log is not None:
                    server.log(format % args)

        class _Server(ThreadingHTTPServer):
            daemon_threads = True

            def handle_error(self, request, client_address) -> None:
                # A scraper hanging up mid-reply (or a scrape racing
                # close()) raises in the handler thread; the stdlib
                # would print a traceback to stderr.  Route it through
                # the same callback, or swallow it.
                if server.log is not None:
                    import sys
                    exc = sys.exc_info()[1]
                    server.log(f"error serving {client_address}: {exc!r}")

        self._httpd = _Server((host, port), _Handler)
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name=f"metrics-server:{self.port}", daemon=True)
        self._thread.start()
        self.closed = False
        self._close_lock = threading.Lock()

    @property
    def url(self) -> str:
        """Base URL of the running endpoint."""
        return f"http://{self.host}:{self.port}"

    @property
    def metrics_url(self) -> str:
        """Full URL of the scrape path."""
        return f"{self.url}/metrics"

    def close(self, timeout: float = 5.0) -> None:
        """Stop serving and release the socket (idempotent, thread-safe).

        Exactly one caller performs the shutdown — concurrent and
        repeated calls return immediately.  The serving thread is
        joined with ``timeout`` so a wedged handler can never hang the
        caller; the listening socket is closed only after the serve
        loop has stopped, which makes closing while scrapes are in
        flight safe (the regression test hammers ``/metrics`` from
        several threads during ``close()``).
        """
        with self._close_lock:
            if self.closed:
                return
            self.closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
