"""The fleet attestation service: enrollment, batched collection, reports.

This is the canonical public API for running ERASMUS at fleet scale:

* :class:`FleetVerifier` — enrolls any number of provers and runs
  batched/sharded collection rounds over a :class:`~repro.fleet.transport.
  Transport`, streaming every :class:`VerificationReport` to the
  configured sinks and into a running :class:`FleetHealth` aggregate;
* :class:`Fleet` — the one-call facade: provision ``count`` devices
  from a :class:`DeviceProfile`, wire them to a transport and a shared
  simulation engine, and expose ``run_until`` / ``collect_all``.

The verification itself is the stateless
:class:`repro.core.verification.VerificationCore`, shared with the
legacy single-device :class:`repro.core.ErasmusVerifier`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Union

from repro.core.config import ErasmusConfig
from repro.core.protocol import (
    OnDemandResponse,
    ProtocolDecodeError,
    decode_response,
)
from repro.core.verification import (
    BaseVerifier,
    DeviceStatus,
    VerificationReport,
)
from repro.fleet.profiles import DeviceProfile, ProvisionedDevice
from repro.fleet.sinks import FleetHealth, ReportSink
from repro.fleet.transport import (
    InProcessTransport,
    SimulatedNetworkTransport,
    SwarmRelayTransport,
    Transport,
)
from repro.sim.engine import SimulationEngine

#: Default number of devices verified per shard of a collection round.
DEFAULT_BATCH_SIZE = 256


class FleetVerifier(BaseVerifier):
    """A verifier service managing an enrolled fleet of provers.

    Parameters mirror the legacy :class:`repro.core.ErasmusVerifier`
    (same ``schedule_tolerance`` / ``allowed_missing`` policy knobs);
    ``sinks`` is any iterable of :class:`ReportSink` that each finished
    report is streamed to, in enrollment-independent arrival order.
    """

    def __init__(self, config: ErasmusConfig,
                 schedule_tolerance: float = 0.25,
                 allowed_missing: int = 0,
                 sinks: Iterable[ReportSink] = ()) -> None:
        super().__init__(config, schedule_tolerance=schedule_tolerance,
                         allowed_missing=allowed_missing)
        self.sinks: List[ReportSink] = list(sinks)
        self.health = FleetHealth()
        self.rounds_completed = 0

    # ------------------------------------------------------------------
    # Enrollment (shared store in BaseVerifier, fleet conveniences here)
    # ------------------------------------------------------------------
    def enroll_device(self, device: ProvisionedDevice) -> None:
        """Register a provisioned device (key and healthy digest bundled)."""
        self.enroll(device.device_id, device.key, [device.healthy_digest])

    def enrolled_ids(self) -> List[str]:
        """All enrolled device ids, in enrollment order."""
        return list(self._enrollments)

    @property
    def device_count(self) -> int:
        """Number of enrolled devices."""
        return len(self._enrollments)

    def add_sink(self, sink: ReportSink) -> None:
        """Attach one more report sink."""
        self.sinks.append(sink)

    # ------------------------------------------------------------------
    # Single-response verification (verify_collection inherited)
    # ------------------------------------------------------------------
    def _verify_payload(self, device_id: str, payload: Optional[bytes],
                        collection_time: float) -> VerificationReport:
        """Judge one raw transport response (``None`` = never answered)."""
        enrollment = self._enrollment_for(device_id)
        if payload is None:
            return VerificationReport(
                device_id=device_id, collection_time=collection_time,
                status=DeviceStatus.NO_DATA,
                anomalies=["no response received"])
        try:
            response = decode_response(payload)
        except ProtocolDecodeError as exc:
            return VerificationReport(
                device_id=device_id, collection_time=collection_time,
                status=DeviceStatus.TAMPERED,
                anomalies=[f"response could not be decoded: {exc}"])
        if isinstance(response, OnDemandResponse):
            return VerificationReport(
                device_id=device_id, collection_time=collection_time,
                status=DeviceStatus.TAMPERED,
                anomalies=["unexpected on-demand response to a plain "
                           "collection"])
        return self.core.verify_measurements(
            enrollment, list(response.measurements), collection_time,
            expect_nonempty=True)

    def _commit(self, report: VerificationReport) -> VerificationReport:
        """Advance per-device bookkeeping and stream the report to sinks."""
        self._advance_bookkeeping(report)
        self.health.record(report)
        for sink in self.sinks:
            sink.emit(report)
        return report

    # ------------------------------------------------------------------
    # Batched collection rounds
    # ------------------------------------------------------------------
    def collect_all(self, transport: Transport,
                    collection_time: Optional[float] = None,
                    k: Optional[int] = None,
                    device_ids: Optional[Iterable[str]] = None,
                    batch_size: int = DEFAULT_BATCH_SIZE,
                    max_workers: Optional[int] = None
                    ) -> List[VerificationReport]:
        """Run one collection round over (a subset of) the fleet.

        The round is sharded into batches of ``batch_size`` devices;
        each batch's requests are exchanged through the transport in one
        go (networked transports overlap the round-trips), then verified
        — on a :class:`ThreadPoolExecutor` worker pool when
        ``max_workers`` exceeds one, mirroring
        :meth:`repro.analysis.sweep.ParameterSweep.run` — and committed
        in deterministic device order.  Returns this round's reports.

        With ``collection_time=None`` (the default) each batch is
        verified at the transport engine's clock *after* its exchange,
        so measurements taken while packets were in flight are never
        misjudged as "from the future".  Pass an explicit time only for
        engineless transports or deliberately retrospective audits.
        """
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        engine = getattr(transport, "engine", None)
        if collection_time is None and engine is None:
            raise ValueError(
                "collection_time is required for transports without an "
                "engine clock")
        ids = list(device_ids) if device_ids is not None \
            else self.enrolled_ids()
        for device_id in ids:
            self._enrollment_for(device_id)
        request_bytes = self.create_collect_request(k).encode()

        reports: List[VerificationReport] = []
        for start in range(0, len(ids), batch_size):
            batch = ids[start:start + batch_size]
            responses = transport.exchange_many(
                {device_id: request_bytes for device_id in batch})
            batch_time = collection_time if collection_time is not None \
                else engine.now

            def _verify(device_id: str,
                        batch_time: float = batch_time) -> VerificationReport:
                return self._verify_payload(device_id,
                                            responses.get(device_id),
                                            batch_time)

            if max_workers is not None and max_workers > 1 and len(batch) > 1:
                with ThreadPoolExecutor(max_workers=max_workers) as pool:
                    batch_reports = list(pool.map(_verify, batch))
            else:
                batch_reports = [_verify(device_id) for device_id in batch]
            for report in batch_reports:
                reports.append(self._commit(report))
        self.rounds_completed += 1
        return reports


# ----------------------------------------------------------------------
# Facade
# ----------------------------------------------------------------------

#: Transport factories selectable by name in :meth:`Fleet.provision`.
TRANSPORT_FACTORIES: Dict[str, Callable[..., Transport]] = {
    "in-process": InProcessTransport,
    "simulated-network": SimulatedNetworkTransport,
    "swarm-relay": SwarmRelayTransport,
}
#: Convenience aliases.
TRANSPORT_FACTORIES["network"] = SimulatedNetworkTransport
TRANSPORT_FACTORIES["swarm"] = SwarmRelayTransport


class Fleet:
    """A provisioned fleet: devices, transport, engine and verifier service.

    Build one with :meth:`provision`; then alternate ``run_until`` (let
    provers self-measure on their schedules) with ``collect_all``
    (verify everyone's history).  The same scenario code runs unchanged
    over any transport.
    """

    def __init__(self, profile: DeviceProfile, verifier: FleetVerifier,
                 transport: Transport, engine: SimulationEngine,
                 devices: Dict[str, ProvisionedDevice]) -> None:
        self.profile = profile
        self.verifier = verifier
        self.transport = transport
        self.engine = engine
        self._devices = devices

    @classmethod
    def provision(cls, profile: DeviceProfile, count: int, *,
                  master_secret: bytes,
                  transport: Union[str, Transport,
                                   Callable[[SimulationEngine], Transport]]
                  = "in-process",
                  engine: Optional[SimulationEngine] = None,
                  sinks: Iterable[ReportSink] = (),
                  schedule_tolerance: float = 0.25,
                  allowed_missing: int = 0,
                  name_prefix: str = "dev",
                  stagger: bool = True,
                  start_time: float = 0.0,
                  transport_options: Optional[Mapping[str, object]] = None
                  ) -> "Fleet":
        """Provision ``count`` devices from one profile, ready to attest.

        Each device gets a key derived from ``master_secret``, an imaged
        architecture, a prover attached to the shared engine (start
        times staggered across one measurement interval unless
        ``stagger=False``, so the fleet does not measure in lockstep),
        a transport registration and a verifier enrollment.

        ``transport`` may be a factory name from
        :data:`TRANSPORT_FACTORIES`, a ready :class:`Transport`
        instance, or a callable receiving the engine.
        """
        if count <= 0:
            raise ValueError("a fleet needs at least one device")
        if engine is None:
            engine = SimulationEngine()
        options = dict(transport_options or {})
        if isinstance(transport, str):
            try:
                factory = TRANSPORT_FACTORIES[transport]
            except KeyError as exc:
                known = ", ".join(sorted(TRANSPORT_FACTORIES))
                raise ValueError(f"unknown transport {transport!r}; "
                                 f"known: {known}") from exc
            built_transport = factory(engine, **options)
        elif isinstance(transport, Transport):
            if options:
                # A ready instance cannot absorb construction options;
                # dropping them silently would run the wrong network.
                raise ValueError(
                    "transport_options cannot be combined with a ready "
                    f"Transport instance (got {sorted(options)})")
            built_transport = transport
        else:
            built_transport = transport(engine, **options)

        verifier = FleetVerifier(profile.config,
                                 schedule_tolerance=schedule_tolerance,
                                 allowed_missing=allowed_missing,
                                 sinks=sinks)
        devices: Dict[str, ProvisionedDevice] = {}
        interval = profile.config.measurement_interval
        for index in range(count):
            device_id = f"{name_prefix}-{index:04d}"
            device = profile.provision(device_id,
                                       master_secret=master_secret)
            offset = start_time
            if stagger:
                offset += (index / count) * interval
            device.prover.attach(engine, start_time=offset)
            built_transport.register(device)
            verifier.enroll_device(device)
            devices[device_id] = device
        return cls(profile=profile, verifier=verifier,
                   transport=built_transport, engine=engine, devices=devices)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def device_count(self) -> int:
        """Number of provisioned devices."""
        return len(self._devices)

    def device_ids(self) -> List[str]:
        """All device ids, in provisioning order."""
        return list(self._devices)

    def device(self, device_id: str) -> ProvisionedDevice:
        """Look up one provisioned device."""
        try:
            return self._devices[device_id]
        except KeyError as exc:
            raise KeyError(f"no device {device_id!r} in this fleet") from exc

    def devices(self) -> List[ProvisionedDevice]:
        """All provisioned devices, in provisioning order."""
        return list(self._devices.values())

    @property
    def health(self) -> FleetHealth:
        """The verifier's running fleet-health aggregate."""
        return self.verifier.health

    @property
    def now(self) -> float:
        """Current virtual time of the shared engine."""
        return self.engine.now

    # ------------------------------------------------------------------
    # Operation
    # ------------------------------------------------------------------
    def run_until(self, time: float) -> int:
        """Advance the simulation (provers self-measure on schedule)."""
        return self.engine.run(until=time)

    def collect_all(self, k: Optional[int] = None,
                    collection_time: Optional[float] = None,
                    batch_size: int = DEFAULT_BATCH_SIZE,
                    max_workers: Optional[int] = None
                    ) -> List[VerificationReport]:
        """Run one collection round over the whole fleet.

        ``collection_time=None`` stamps each batch at the engine clock
        after its exchange (see :meth:`FleetVerifier.collect_all`).
        """
        return self.verifier.collect_all(
            self.transport, collection_time, k=k,
            batch_size=batch_size, max_workers=max_workers)

    def close(self) -> None:
        """Close every attached report sink."""
        for sink in self.verifier.sinks:
            sink.close()

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
