"""Malware-detection analysis over measurement / collection timelines.

The core question of Figure 1: given when measurements are taken, when
collections happen and when malware was present, which infections are
detected and how quickly can the verifier react?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.adversary.malware import Infection, MalwareCampaign
from repro.core.scheduler import MeasurementScheduler, RegularScheduler


def infection_detected(infection: Infection,
                       measurement_times: Sequence[float]) -> bool:
    """True when at least one measurement fell inside the infection window.

    A measurement taken while malware is present records an unhealthy
    digest; once recorded, the MAC makes the evidence indelible (any
    attempt to remove it is itself detected).
    """
    end = infection.end if infection.end is not None else float("inf")
    return any(infection.start <= time < end for time in measurement_times)


def detection_latency(infection: Infection,
                      measurement_times: Sequence[float],
                      collection_times: Sequence[float]) -> Optional[float]:
    """Time from infection start until the verifier can react.

    The verifier learns about the infection at the first collection that
    happens at or after the first incriminating measurement (Figure 1,
    infection 2).  Returns ``None`` when the infection is never detected
    within the given timelines.
    """
    end = infection.end if infection.end is not None else float("inf")
    incriminating = [time for time in measurement_times
                     if infection.start <= time < end]
    if not incriminating:
        return None
    first_evidence = min(incriminating)
    exposing = [time for time in collection_times if time >= first_evidence]
    if not exposing:
        return None
    return min(exposing) - infection.start


@dataclass
class DetectionSummary:
    """Aggregate outcome of a detection experiment."""

    total_infections: int
    detected_infections: int
    latencies: List[float]
    measurement_count: int
    collection_count: int

    @property
    def detection_rate(self) -> float:
        """Fraction of infections that were detected."""
        if self.total_infections == 0:
            return 1.0
        return self.detected_infections / self.total_infections

    @property
    def mean_latency(self) -> Optional[float]:
        """Mean infection-to-reaction latency over detected infections."""
        if not self.latencies:
            return None
        return sum(self.latencies) / len(self.latencies)

    @property
    def max_latency(self) -> Optional[float]:
        """Worst-case latency over detected infections."""
        return max(self.latencies) if self.latencies else None


def simulate_detection(measurement_interval: float,
                       collection_interval: float,
                       campaign: MalwareCampaign,
                       horizon: float,
                       scheduler: Optional[MeasurementScheduler] = None,
                       on_demand_only: bool = False) -> DetectionSummary:
    """Run one timeline-level detection experiment.

    Measurements follow ``scheduler`` (regular with ``measurement_interval``
    by default); collections happen every ``collection_interval``.  With
    ``on_demand_only=True`` the only measurements are the ones taken at
    collection time — the classic on-demand RA baseline, which is what
    makes mobile malware invisible to it.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    collection_times = _regular_times(collection_interval, horizon)
    if on_demand_only:
        measurement_times = list(collection_times)
    else:
        if scheduler is None:
            scheduler = RegularScheduler(measurement_interval)
        measurement_times = scheduler.schedule(0.0, horizon)

    visits = campaign.generate(horizon)
    infections = [Infection(device_id="prover", start=start, end=start + dwell)
                  for start, dwell in visits]

    detected = 0
    latencies: List[float] = []
    for infection in infections:
        if infection_detected(infection, measurement_times):
            detected += 1
            latency = detection_latency(infection, measurement_times,
                                        collection_times)
            if latency is not None:
                latencies.append(latency)
    return DetectionSummary(total_infections=len(infections),
                            detected_infections=detected,
                            latencies=latencies,
                            measurement_count=len(measurement_times),
                            collection_count=len(collection_times))


def _regular_times(interval: float, horizon: float) -> List[float]:
    if interval <= 0:
        raise ValueError("interval must be positive")
    times: List[float] = []
    time = interval
    while time <= horizon:
        times.append(time)
        time += interval
    return times
