#!/usr/bin/env python3
"""Multi-process collection: 10,000 devices, 4 worker processes, sockets.

The single-process ceiling falls in two places at once:

* **transport** — requests and responses cross the kernel as real UDP
  datagrams on the loopback interface (``transport="socket"``), with a
  TCP fallback for responses too large for one datagram, instead of an
  in-process function call;
* **verification** — a ``ShardedFleetVerifier`` with
  ``worker_mode="process"`` ships each shard's response batches to
  spawned worker processes over a compact binary pipe codec and merges
  the per-shard ``FleetHealth`` parts that come home.

The parent keeps all authoritative state (enrollments, store, sinks);
workers are stateless verification engines.  Provisioning is
deterministic, so the multi-process fleet's merged health is
*byte-identical* to a single-process twin's — checked at the end.

Run with:  python examples/multiprocess_collection.py [device-count]
"""

import gc
import json
import sys
import time

from repro.fleet import DeviceProfile, Fleet

FLEET_SIZE = 10_000
WORKERS = 4
INFECTED = ("dev-0042", "dev-2718", "dev-9001")
FIRMWARE = b"turbine-firmware-v8" + bytes(200)
MALWARE = b"persistent-implant!" + bytes(210)
MASTER_SECRET = b"factory-floor-master-secret"


def provision(count, shards=None, worker_mode="loop",
              transport="in-process") -> Fleet:
    """One deterministic fleet, measured up to the collection time."""
    profile = DeviceProfile.smartplus(firmware=FIRMWARE,
                                      application_size=512,
                                      measurement_interval=60.0,
                                      collection_interval=600.0,
                                      buffer_slots=16)
    fleet = Fleet.provision(profile, count, master_secret=MASTER_SECRET,
                            shards=shards, worker_mode=worker_mode,
                            transport=transport)
    fleet.run_until(300.0)
    for device_id in INFECTED:
        if count > int(device_id.rpartition("-")[2]):
            fleet.device(device_id).load_application(MALWARE)
    fleet.run_until(600.0)
    return fleet


def health_fingerprint(fleet: Fleet) -> bytes:
    return json.dumps(fleet.health.to_row(), sort_keys=True,
                      separators=(",", ":")).encode()


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else FLEET_SIZE
    expected_flagged = sorted(
        device_id for device_id in INFECTED
        if count > int(device_id.rpartition("-")[2]))

    print(f"provisioning two deterministic twins of {count} devices...")
    baseline_fleet = provision(count)
    process_fleet = provision(count, shards=WORKERS, worker_mode="process",
                              transport="socket")
    # Spawn the 4 workers and ship enrollments before timing: the
    # numbers below are steady-state rounds, not process cold start.
    process_fleet.verifier.warm_up()

    gc.collect()
    started = time.perf_counter()
    baseline_reports = baseline_fleet.collect_all()
    baseline_wall = time.perf_counter() - started

    gc.collect()
    started = time.perf_counter()
    process_reports = process_fleet.collect_all()
    process_wall = time.perf_counter() - started

    print(f"\nasync single-process (in-process transport):")
    print(f"  {len(baseline_reports)} reports in {baseline_wall:.2f}s "
          f"({len(baseline_reports) / baseline_wall:,.0f} devices/second)")
    transport = process_fleet.transport
    print(f"{WORKERS} worker processes (socket transport):")
    print(f"  {len(process_reports)} reports in {process_wall:.2f}s "
          f"({len(process_reports) / process_wall:,.0f} devices/second)")
    print(f"  loopback datagrams answered over UDP, "
          f"{transport.tcp_fallbacks} oversized responses via TCP fallback")

    flagged = sorted(report.device_id for report in process_reports
                     if report.detected_infection())
    print(f"\ninfected mid-interval: {expected_flagged}")
    print(f"flagged by collection: {flagged}")
    print()
    print(process_fleet.health.summary())

    identical = health_fingerprint(baseline_fleet) == \
        health_fingerprint(process_fleet)
    print(f"\nmerged multi-process health byte-identical to "
          f"single-process twin: {identical}")
    baseline_fleet.close()
    process_fleet.close()
    if not identical or flagged != expected_flagged:
        raise SystemExit("multi-process collection diverged from baseline")


if __name__ == "__main__":
    main()
