"""Analysis utilities: detection, QoA statistics and parameter sweeps.

These functions operate on *timelines* — measurement times, collection
times and infection intervals — rather than on live simulation objects,
so they are fast enough for the large parameter sweeps behind the QoA
experiments and can also serve as analytic oracles for the end-to-end
simulation tests.
"""

from repro.analysis.detection import (
    DetectionSummary,
    FleetDetectionSummary,
    detection_latency,
    first_exposing_report,
    infection_detected,
    match_fleet_reports,
    simulate_detection,
)
from repro.analysis.qoa_analysis import (
    QoAComparison,
    collection_freshness,
    compare_erasmus_vs_ondemand,
    detection_curve,
)
from repro.analysis.sweep import ParameterSweep, SweepResult

__all__ = [
    "DetectionSummary",
    "FleetDetectionSummary",
    "ParameterSweep",
    "QoAComparison",
    "SweepResult",
    "collection_freshness",
    "compare_erasmus_vs_ondemand",
    "detection_curve",
    "detection_latency",
    "first_exposing_report",
    "infection_detected",
    "match_fleet_reports",
    "simulate_detection",
]
