"""Kill-and-restore integration: a FleetVerifier survives its process.

The acceptance bar for the persistence subsystem: after a simulated
crash, :meth:`FleetVerifier.restore` must reproduce the pre-crash
:class:`FleetHealth` aggregate and per-device ``last_seen`` exactly —
byte-identical snapshot after an idempotent re-checkpoint — for both
durable backends, and the restored verifier must keep verifying
correctly (stale devices flagged, healthy devices not).
"""

import pytest

from repro.fleet import DeviceProfile, DuplicateEnrollmentError, Fleet, \
    FleetVerifier
from repro.store import JsonlStore, SqliteStore

FIRMWARE = b"restore-test-firmware" + bytes(100)
MASTER_SECRET = b"restore-test-master-secret"


def make_store(backend, tmp_path, name="state"):
    if backend == "jsonl":
        return JsonlStore(tmp_path / name)
    return SqliteStore(tmp_path / f"{name}.sqlite")


def profile():
    return DeviceProfile.smartplus(firmware=FIRMWARE,
                                   application_size=256,
                                   measurement_interval=60.0,
                                   collection_interval=600.0,
                                   buffer_slots=16)


def provision(tmp_path, backend, count=24):
    return Fleet.provision(profile(), count, master_secret=MASTER_SECRET,
                           store=make_store(backend, tmp_path))


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_kill_and_restore_reproduces_state_exactly(backend, tmp_path):
    fleet = provision(tmp_path, backend)
    fleet.run_until(600.0)
    reports = fleet.collect_all()
    assert all(not report.detected_infection() for report in reports)

    health_before = fleet.verifier.health.to_row()
    snapshot_before = fleet.verifier.store.state_bytes()
    last_seen_before = {
        device_id: fleet.verifier._enrollments[device_id].last_seen
        for device_id in fleet.device_ids()}
    times_before = {
        device_id: fleet.verifier.last_collection_time(device_id)
        for device_id in fleet.device_ids()}
    assert snapshot_before  # the round checkpointed automatically

    # Crash: only the store's files survive.
    restored = FleetVerifier.restore(
        profile().config, make_store(backend, tmp_path))

    assert restored.health.to_row() == health_before
    assert restored.device_count == fleet.device_count
    for device_id in fleet.device_ids():
        assert restored._enrollments[device_id].last_seen \
            == last_seen_before[device_id]
        assert restored.last_collection_time(device_id) \
            == times_before[device_id]
    assert restored.rounds_completed == 1

    # Idempotent re-checkpoint: byte-identical snapshot.
    restored.checkpoint()
    assert restored.store.state_bytes() == snapshot_before


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_restored_verifier_flags_stale_devices(backend, tmp_path):
    fleet = provision(tmp_path, backend)
    fleet.run_until(600.0)
    fleet.collect_all()
    stalled = fleet.device_ids()[3]
    fleet.device(stalled).prover.critical_task_active = lambda _time: True
    fleet.run_until(1200.0)

    restored = FleetVerifier.restore(
        profile().config, make_store(backend, tmp_path))
    second = restored.collect_all(fleet.transport)
    flagged = [report.device_id for report in second
               if report.detected_infection()]
    assert flagged == [stalled]
    # The second round advanced and re-checkpointed durable state.
    assert restored.rounds_completed == 2
    third = FleetVerifier.restore(
        profile().config, make_store(backend, tmp_path))
    assert third.health.to_row() == restored.health.to_row()


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_uncheckpointed_round_recovers_from_journal(backend, tmp_path):
    """A crash mid-deployment loses nothing that reached the journal."""
    fleet = provision(tmp_path, backend, count=8)
    fleet.run_until(600.0)
    fleet.collect_all()  # checkpointed round
    fleet.run_until(1200.0)
    fleet.collect_all(checkpoint=False)  # crash before checkpoint
    health_before = fleet.verifier.health.to_row()

    restored = FleetVerifier.restore(
        profile().config, make_store(backend, tmp_path))
    assert restored.health.to_row() == health_before
    assert restored.health.reports_total == 16


def test_restore_keeps_committing_through_the_store(tmp_path):
    fleet = provision(tmp_path, "jsonl", count=6)
    fleet.run_until(600.0)
    fleet.collect_all()
    restored = FleetVerifier.restore(
        profile().config, make_store("jsonl", tmp_path))
    # New enrollments after restore are durable too.
    ghost = profile().provision("late-device", master_secret=MASTER_SECRET)
    restored.enroll_device(ghost)
    restored.checkpoint()
    again = FleetVerifier.restore(
        profile().config, make_store("jsonl", tmp_path))
    assert again.is_enrolled("late-device")
    assert again.device_count == 7


def test_duplicate_enrollment_rejected_and_escape_hatch(tmp_path):
    fleet = provision(tmp_path, "jsonl", count=4)
    device = fleet.device(fleet.device_ids()[0])
    with pytest.raises(DuplicateEnrollmentError):
        fleet.verifier.enroll_device(device)
    # The escape hatch deliberately resets the enrollment.
    fleet.run_until(600.0)
    fleet.collect_all()
    assert fleet.verifier._enrollments[device.device_id].last_seen \
        is not None
    fleet.verifier.enroll_device(device, re_enroll=True)
    assert fleet.verifier._enrollments[device.device_id].last_seen is None


def test_provisioning_over_existing_store_state_fails_loudly(tmp_path):
    """Re-running provision against a used state dir must not silently
    erase persisted last-seen state — restore is the correct path."""
    fleet = provision(tmp_path, "jsonl", count=4)
    fleet.run_until(600.0)
    fleet.collect_all()
    fleet.close()
    with pytest.raises(DuplicateEnrollmentError):
        provision(tmp_path, "jsonl", count=4)


def test_re_enrollment_clears_collection_time_everywhere(tmp_path):
    """re_enroll=True voids the old unit's collection history — live,
    in the next checkpoint, and across an un-checkpointed crash."""
    fleet = provision(tmp_path, "sqlite", count=4)
    device_id = fleet.device_ids()[0]
    fleet.run_until(600.0)
    fleet.collect_all()
    assert fleet.verifier.last_collection_time(device_id) is not None

    fleet.verifier.enroll_device(fleet.device(device_id), re_enroll=True)
    assert fleet.verifier.last_collection_time(device_id) is None
    # Crash before any checkpoint: the restore must agree.
    restored = FleetVerifier.restore(
        profile().config, make_store("sqlite", tmp_path))
    assert restored.last_collection_time(device_id) is None
    assert restored.last_seen(device_id) is None
