"""Every fleet test runs under the runtime lock-order witness.

Locks the fleet stack creates while a test runs (``fleet.store``,
``fleet.worker_handle``, ``fleet.worker_pool``, plus the obs locks) are
witnessed: inverted acquisition orders and held-lock sleeps fail the
test that produced them, with the offending thread and lock names in
the report.
"""

import pytest

from repro.statics.runtime import witness


@pytest.fixture(autouse=True)
def lock_witness():
    with witness() as active:
        yield active
    assert not active.violations, "\n".join(
        str(violation) for violation in active.violations)
