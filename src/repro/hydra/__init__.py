"""HYDRA security architecture model (medium-end devices with an MMU).

HYDRA builds remote attestation on the formally verified seL4
microkernel: the attestation process (PrAtt) is the first user-space
process, runs at the highest scheduling priority, holds exclusive
capabilities to the key ``K``, its own thread control block and the
RROC high bits, and spawns all other processes at lower priorities.
Secure boot guarantees the integrity of seL4 and PrAtt at start-up.

The paper's medium-end ERASMUS prototype (Figure 7, Table 1, Table 2,
Figure 8) runs on an i.MX6 Sabre Lite under this architecture.  This
package models:

* a functional seL4-like microkernel (:mod:`repro.hydra.sel4`):
  processes, capabilities, priority scheduling;
* hardware-backed secure boot (:mod:`repro.hydra.secure_boot`);
* the PrAtt process (:mod:`repro.hydra.pratt`);
* :class:`HydraArchitecture`, the
  :class:`repro.arch.SecurityArchitecture` implementation used by the
  ERASMUS core (:mod:`repro.hydra.architecture`).
"""

from repro.hydra.architecture import HydraArchitecture, build_hydra_architecture
from repro.hydra.pratt import PrAttProcess
from repro.hydra.secure_boot import SecureBoot, SecureBootError
from repro.hydra.sel4 import (
    Capability,
    CapabilityError,
    Microkernel,
    Process,
    Right,
)

__all__ = [
    "Capability",
    "CapabilityError",
    "HydraArchitecture",
    "Microkernel",
    "PrAttProcess",
    "Process",
    "Right",
    "SecureBoot",
    "SecureBootError",
    "build_hydra_architecture",
]
