"""Tests for the process worker pool: codec, byte-identity, crash recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeviceStatus
from repro.fleet import Fleet, FleetVerifier, WorkerCrashed, WorkerError, \
    WorkerPool
from repro.fleet.workers import (
    decode_result,
    decode_task,
    encode_result,
    encode_task,
)
from tests.fleet.helpers import health_bytes, report_key
from tests.fleet.helpers import small_profile as _small_profile

FIRMWARE = b"workers-test-firmware"
MALWARE = b"workers-test-implant!"


def small_profile():
    return _small_profile(FIRMWARE)


# ----------------------------------------------------------------------
# Binary task codec
# ----------------------------------------------------------------------

def test_task_codec_round_trip():
    entries = [("dev-0000", b"\x02some-payload", 42.5),
               ("dev-0001", None, None),
               ("dev-0002", b"", 0.0),
               ("dev-é", b"\x00\xff" * 100, None)]
    frame = encode_task(123.25, entries, want_timings=True)
    collection_time, flags, decoded = decode_task(frame)
    assert collection_time == 123.25
    assert flags & 0x01
    assert [(device_id, None if payload is None else bytes(payload),
             last_seen) for device_id, payload, last_seen in decoded] \
        == entries


def test_task_codec_payloads_are_views():
    frame = encode_task(0.0, [("d", b"payload-bytes", None)])
    _, _, entries = decode_task(frame)
    payload = entries[0][1]
    assert isinstance(payload, memoryview)
    assert payload.readonly
    assert bytes(payload) == b"payload-bytes"


def test_result_codec_round_trip():
    rows = [{"device_id": "dev-0000", "status": "ok", "anomalies": []},
            {"device_id": "dev-0001", "status": "no_data"}]
    health = {"devices_seen": ["dev-0000"], "rounds": 1}
    decoded_rows, decoded_health, timings = decode_result(
        encode_result(rows, health, [0.5, 0.25]))
    assert decoded_rows == rows
    assert decoded_health == health
    assert timings == [0.5, 0.25]
    decoded_rows, decoded_health, timings = decode_result(
        encode_result([], health))
    assert decoded_rows == []
    assert decoded_health == health
    assert timings is None


# ----------------------------------------------------------------------
# Process mode == loop mode
# ----------------------------------------------------------------------

def run_rounds(fleet, infected=(), rounds=1):
    """Drive deterministic rounds with a mid-window infect/clean cycle."""
    horizon = 0.0
    all_reports = []
    for _ in range(rounds):
        horizon += 60.0
        fleet.run_until(horizon)
        for device_id in infected:
            fleet.device(device_id).load_application(MALWARE)
        fleet.run_until(horizon + 20.0)
        horizon += 20.0
        for device_id in infected:
            fleet.device(device_id).load_application(FIRMWARE)
        all_reports.append(fleet.collect_all())
    return all_reports


def provision_twin(count, shards, infected=(), rounds=1):
    """Twin sharded fleets differing only in where verification runs."""
    outcomes = []
    for worker_mode in ("loop", "process"):
        fleet = Fleet.provision(small_profile(), count,
                                master_secret=b"master", shards=shards,
                                worker_mode=worker_mode)
        outcomes.append((fleet, run_rounds(fleet, infected, rounds)))
    return outcomes


def test_process_mode_matches_loop_mode():
    (loop, loop_rounds), (process, process_rounds) = provision_twin(
        18, shards=3, infected=("dev-0004", "dev-0011"), rounds=2)
    try:
        for loop_reports, process_reports in zip(loop_rounds,
                                                 process_rounds):
            assert [report_key(r) for r in loop_reports] == \
                [report_key(r) for r in process_reports]
        assert health_bytes(loop.verifier) == health_bytes(process.verifier)
        # The infect/clean cycle flags its victims in both placements
        # (the 80 s cadence additionally flags round-2 gap policy hits,
        # identically on both sides — pinned by the byte-identity above).
        assert {"dev-0004", "dev-0011"} <= process.health.flagged_devices
        pool = process.verifier.worker_pool
        assert pool is not None and pool.restarts == [0, 0, 0]
    finally:
        loop.close()
        process.close()


@settings(max_examples=4, deadline=None)
@given(count=st.integers(min_value=1, max_value=10),
       shards=st.integers(min_value=1, max_value=3),
       infect_stride=st.integers(min_value=0, max_value=3))
def test_process_merge_health_byte_identical_property(count, shards,
                                                      infect_stride):
    infected = tuple(f"dev-{index:04d}" for index in range(count)
                     if infect_stride and index % 3 == infect_stride % 3)
    (loop, _), (process, _) = provision_twin(count, shards,
                                             infected=infected)
    try:
        assert health_bytes(loop.verifier) == health_bytes(process.verifier)
    finally:
        loop.close()
        process.close()


# ----------------------------------------------------------------------
# Crash injection and recovery
# ----------------------------------------------------------------------

def test_worker_crash_loses_round_then_rejoins():
    # A whole collection round vanishes with the crashed worker, so the
    # survivors' buffers bridge a one-round gap on rejoin: tolerate it.
    fleet = Fleet.provision(small_profile(), 12, master_secret=b"master",
                            shards=2, worker_mode="process",
                            allowed_missing=8)
    try:
        verifier = fleet.verifier
        shard0 = [device_id for device_id in verifier.enrolled_ids()
                  if verifier.shard_of(device_id) == 0]
        others = [device_id for device_id in verifier.enrolled_ids()
                  if verifier.shard_of(device_id) != 0]
        assert shard0 and others

        fleet.run_until(60.0)
        first = {r.device_id: r for r in fleet.collect_all()}
        assert all(r.status is DeviceStatus.HEALTHY for r in first.values())
        pool = verifier.worker_pool
        assert pool is not None

        pool.inject_crash(0)
        fleet.run_until(120.0)
        second = {r.device_id: r for r in fleet.collect_all()}
        for device_id in shard0:
            report = second[device_id]
            assert report.status is DeviceStatus.NO_DATA
            assert any("worker crashed" in anomaly
                       for anomaly in report.anomalies)
        for device_id in others:
            assert second[device_id].status is DeviceStatus.HEALTHY
        assert second[shard0[0]].collection_time == \
            pytest.approx(120.0, abs=1.0)

        # The next round respawns the slot, re-ships its enrollment
        # mirror, and the shard rejoins with data-bearing reports.
        fleet.run_until(180.0)
        third = {r.device_id: r for r in fleet.collect_all()}
        assert all(r.status is DeviceStatus.HEALTHY for r in third.values())
        assert all(r.measurement_count > 0 for r in third.values())
        assert pool.restarts[0] == 1
        assert pool.restarts[1] == 0
        assert verifier.health.devices_seen == set(verifier.enrolled_ids())
    finally:
        fleet.close()


def test_crash_round_health_counts_shard_devices_unseen():
    fleet = Fleet.provision(small_profile(), 8, master_secret=b"master",
                            shards=2, worker_mode="process")
    try:
        fleet.run_until(60.0)
        fleet.verifier.warm_up()
        pool = fleet.verifier.worker_pool
        pool.inject_crash(1)
        reports = fleet.collect_all()
        shard1 = {device_id for device_id in fleet.verifier.enrolled_ids()
                  if fleet.verifier.shard_of(device_id) == 1}
        assert {r.device_id for r in reports
                if r.status is DeviceStatus.NO_DATA} == shard1
        stats = reports.stats
        assert stats.responses_lost == len(shard1)
    finally:
        fleet.close()


# ----------------------------------------------------------------------
# Pool mechanics
# ----------------------------------------------------------------------

def test_submit_before_spawn_raises():
    pool = WorkerPool(1, config=small_profile().config)
    try:
        with pytest.raises(WorkerCrashed):
            pool.submit_task(0, 0.0, [])
    finally:
        pool.close()


def test_worker_reports_python_errors_as_worker_error():
    pool = WorkerPool(1, config=small_profile().config)
    try:
        pool.ensure_worker(0)
        future = pool.sync_enrollments(0, [{"bogus": "row"}])
        with pytest.raises(WorkerError, match="worker 0 failed"):
            future.result(timeout=30)
        # The worker survives a failed frame: the next one still works.
        assert pool.sync_enrollments(0, []).result(timeout=30) is not None
    finally:
        pool.close()


def test_pool_close_is_idempotent_and_final():
    pool = WorkerPool(2, config=small_profile().config)
    pool.ensure_worker(0)
    pool.close()
    pool.close()
    with pytest.raises(RuntimeError):
        pool.ensure_worker(0)


def test_enrollment_epoch_tracks_material_changes_only():
    profile = small_profile()
    verifier = FleetVerifier(profile.config)
    device = profile.provision("e-0000", master_secret=b"master")
    epoch0 = verifier._enrollment_epoch
    verifier.enroll_device(device)
    epoch1 = verifier._enrollment_epoch
    assert epoch1 > epoch0
    # Re-enrolling identical material does not bump the epoch, so
    # worker mirrors are not re-shipped for nothing.
    verifier.enroll_device(device, re_enroll=True)
    assert verifier._enrollment_epoch == epoch1
    # New firmware (a new digest whitelist) is material: epoch bumps.
    changed = profile.provision("e-0000", master_secret=b"other")
    verifier.enroll_device(changed, re_enroll=True)
    assert verifier._enrollment_epoch > epoch1


def test_worker_pool_metrics_record_restarts_and_latency():
    from repro.obs import Observability

    obs = Observability()
    fleet = Fleet.provision(small_profile(), 6, master_secret=b"master",
                            shards=2, worker_mode="process", obs=obs)
    try:
        fleet.run_until(60.0)
        fleet.collect_all()
        assert obs.worker_task_seconds.labels("0").count >= 1
        assert obs.worker_task_seconds.labels("1").count >= 1
        assert obs.worker_queue_depth.value("0") == 0
        assert obs.worker_restarts_total.value("0") == 0
        pool = fleet.verifier.worker_pool
        pool.inject_crash(0)
        fleet.run_until(120.0)
        fleet.collect_all()
        fleet.run_until(180.0)
        fleet.collect_all()
        assert obs.worker_restarts_total.value("0") == 1
    finally:
        fleet.close()


def test_kill_crashes_an_idle_worker_immediately():
    """OP_EXIT over the pipe: no task needed, futures fail, slot respawns."""
    pool = WorkerPool(1, config=small_profile().config)
    try:
        generation = pool.ensure_worker(0)
        assert pool.sync_enrollments(0, []).result(timeout=30) is not None
        pool.kill(0)
        assert pool._handles[0].dead.wait(timeout=10)
        with pytest.raises(WorkerCrashed):
            pool.submit_task(0, 0.0, [])
        assert pool.ensure_worker(0) == generation + 1
        assert pool.restarts[0] == 1
        assert pool.sync_enrollments(0, []).result(timeout=30) is not None
    finally:
        pool.close()


def test_kill_without_spawn_is_a_no_op():
    pool = WorkerPool(1, config=small_profile().config)
    try:
        pool.kill(0)  # never spawned: nothing to do, nothing to raise
    finally:
        pool.close()


def test_drain_rejects_frames_with_unknown_opcodes():
    """A frame neither error nor result means the codecs disagree;
    handing its body to decode_result would produce garbage."""
    import multiprocessing
    import threading
    from concurrent.futures import Future

    from repro.fleet.workers import _FRAME, _WorkerHandle

    parent_end, worker_end = multiprocessing.Pipe(duplex=True)
    pool = WorkerPool(1, config=small_profile().config)
    handle = _WorkerHandle(process=None, conn=parent_end)
    future = Future()
    handle.pending[7] = future
    reader = threading.Thread(target=pool._drain, args=(0, handle),
                              daemon=True)
    reader.start()
    try:
        worker_end.send_bytes(_FRAME.pack(99, 7) + b"mystery")
        with pytest.raises(WorkerError, match="unexpected opcode 99"):
            future.result(timeout=10)
    finally:
        worker_end.close()
        reader.join(timeout=10)
        pool.close()
