"""Benchmark: fleet-collection throughput (devices/second, 1,000 devices).

Runs one full fleet round — provision, self-measurement schedule,
batched ``collect_all``, verification — through :mod:`repro.fleet` and
records the devices/second rate in the benchmark's ``extra_info`` so
successive scaling PRs have a fixed yardstick.
"""

import pytest

from repro.experiments import fleet_collection

FLEET_SIZE = 1000


def test_fleet_round_throughput_1000_devices(benchmark):
    row = benchmark.pedantic(
        fleet_collection.run_round,
        args=("in-process", FLEET_SIZE),
        rounds=1, iterations=1)
    assert row["reports"] == FLEET_SIZE
    assert row["healthy"] == FLEET_SIZE
    benchmark.extra_info["devices_per_second"] = row["devices_per_second"]
    benchmark.extra_info["collect_devices_per_second"] = \
        row["collect_devices_per_second"]
    # A full 1,000-device round should comfortably beat one device/ms;
    # the bound is loose so CI machines of any speed pass it.
    assert row["devices_per_second"] > 50


@pytest.mark.parametrize("transport", ["simulated-network", "swarm-relay"])
def test_fleet_round_networked_transports(benchmark, transport):
    row = benchmark.pedantic(
        fleet_collection.run_round,
        args=(transport, 200),
        rounds=1, iterations=1)
    assert row["reports"] == 200
    assert row["healthy"] == 200
    # The simulated round-trip must have cost virtual time (packets
    # traversed real links) yet stay far below the measurement interval.
    assert 0 < row["sim_round_trip_s"] < 10.0
