"""Tests for the generic parameter-sweep helper."""

from repro.analysis import ParameterSweep


def test_combinations_are_cartesian_product():
    sweep = ParameterSweep({"a": [1, 2], "b": ["x", "y", "z"]})
    combinations = sweep.combinations()
    assert len(combinations) == 6
    assert {"a": 2, "b": "z"} in combinations


def test_run_collects_results_in_order():
    sweep = ParameterSweep({"x": [1, 2, 3]})
    results = sweep.run(lambda x: x * 10)
    assert [result.outcome for result in results] == [10, 20, 30]
    assert sweep.column("x") == [1, 2, 3]
    assert sweep.outcomes() == [10, 20, 30]


def test_as_table_flattens_dict_outcomes():
    sweep = ParameterSweep({"speed": [0.0, 1.0]})
    sweep.run(lambda speed: {"coverage": 1.0 - speed / 10.0})
    table = sweep.as_table()
    assert table[0] == {"speed": 0.0, "coverage": 1.0}
    assert table[1]["coverage"] == 0.9


def test_as_table_wraps_scalar_outcomes():
    sweep = ParameterSweep({"n": [4]})
    sweep.run(lambda n: n * n)
    assert sweep.as_table(outcome_name="square") == [{"n": 4, "square": 16}]


def test_empty_parameter_space():
    sweep = ParameterSweep({})
    results = sweep.run(lambda: 42)
    assert len(results) == 1
    assert results[0].outcome == 42


def test_parallel_run_matches_serial_run():
    parameters = {"a": [1, 2, 3, 4], "b": [10, 100]}
    serial = ParameterSweep(parameters)
    serial.run(lambda a, b: a * b)
    parallel = ParameterSweep(parameters)
    parallel.run(lambda a, b: a * b, max_workers=4)
    assert [result.parameters for result in parallel.results] == \
        [result.parameters for result in serial.results]
    assert parallel.outcomes() == serial.outcomes()


def test_parallel_run_actually_overlaps_workers():
    import threading
    import time

    seen_threads = set()

    def record(x):
        seen_threads.add(threading.get_ident())
        time.sleep(0.01)
        return x

    sweep = ParameterSweep({"x": list(range(8))})
    sweep.run(record, max_workers=4)
    assert sweep.outcomes() == list(range(8))
    assert len(seen_threads) > 1


def test_max_workers_one_stays_serial():
    sweep = ParameterSweep({"x": [1, 2]})
    sweep.run(lambda x: x + 1, max_workers=1)
    assert sweep.outcomes() == [2, 3]
