"""Tests for the Table 1 code-size model."""

import pytest

from repro.hw.codesize import CodeSizeModel


@pytest.fixture
def model() -> CodeSizeModel:
    return CodeSizeModel()


PAPER_CELLS = [
    ("smart+", "on-demand", "hmac-sha1", 4.9),
    ("smart+", "erasmus", "hmac-sha1", 4.7),
    ("smart+", "on-demand", "hmac-sha256", 5.1),
    ("smart+", "erasmus", "hmac-sha256", 4.9),
    ("smart+", "on-demand", "keyed-blake2s", 28.9),
    ("smart+", "erasmus", "keyed-blake2s", 28.7),
    ("hydra", "on-demand", "hmac-sha256", 231.96),
    ("hydra", "erasmus", "hmac-sha256", 233.84),
    ("hydra", "on-demand", "keyed-blake2s", 239.29),
    ("hydra", "erasmus", "keyed-blake2s", 241.17),
]


@pytest.mark.parametrize("architecture,variant,mac,expected", PAPER_CELLS)
def test_table1_cells_match_paper(model, architecture, variant, mac, expected):
    assert model.rom_size_kb(architecture, variant, mac) == pytest.approx(
        expected, abs=0.01)


def test_erasmus_smaller_on_smartplus(model):
    for mac in ("hmac-sha1", "hmac-sha256", "keyed-blake2s"):
        assert model.rom_size_kb("smart+", "erasmus", mac) < \
            model.rom_size_kb("smart+", "on-demand", mac)


def test_erasmus_about_one_percent_larger_on_hydra(model):
    for mac in ("hmac-sha256", "keyed-blake2s"):
        on_demand = model.rom_size_kb("hydra", "on-demand", mac)
        erasmus = model.rom_size_kb("hydra", "erasmus", mac)
        assert erasmus > on_demand
        assert (erasmus - on_demand) / on_demand < 0.02


def test_hydra_sha1_not_built(model):
    assert not model.supported("hydra", "hmac-sha1")
    with pytest.raises(ValueError):
        model.report("hydra", "erasmus", "hmac-sha1")


def test_unknown_architecture_and_variant_rejected(model):
    with pytest.raises(ValueError):
        model.report("trustzone", "erasmus", "hmac-sha256")
    with pytest.raises(ValueError):
        model.report("smart+", "hybrid", "hmac-sha256")


def test_report_components_sum_to_total(model):
    report = model.report("hydra", "erasmus", "keyed-blake2s")
    assert sum(report.components.values()) == pytest.approx(report.total_kb,
                                                            abs=0.01)
    assert report.total_bytes == int(round(report.total_kb * 1024))


def test_table1_has_none_for_unsupported_cells(model):
    table = model.table1()
    assert table["hmac-sha1"]["hydra/erasmus"] is None
    assert table["hmac-sha256"]["hydra/erasmus"] == pytest.approx(233.84)
