"""Pluggable crypto backend registry.

The reproduction ships two interchangeable crypto providers:

* ``reference`` — the from-scratch, RFC/FIPS-faithful implementations
  in :mod:`repro.crypto.sha1` / :mod:`repro.crypto.sha256` /
  :mod:`repro.crypto.blake2s` / :mod:`repro.crypto.hmac`.  These expose
  compression-function work counts for the hardware cost models and are
  the ground truth the paper's Table 1 code-size figures refer to.
* ``accelerated`` — the CPython stdlib (``hashlib`` / ``hmac``), which
  computes bit-for-bit identical digests one to two orders of magnitude
  faster.  This is the default for simulations, sweeps and benchmarks,
  where only the *values* matter, not the modelled cycle counts.

Backend selection, in decreasing precedence:

1. a per-call / per-object ``backend=`` argument (a name or a
   :class:`CryptoBackend` instance) anywhere the crypto API accepts one;
2. :attr:`repro.core.config.ErasmusConfig.crypto_backend`, threaded
   through the scheduler, prover and verifier;
3. a process-wide override installed with :func:`set_default_backend`
   (or temporarily with :func:`use_backend`);
4. the ``ERASMUS_CRYPTO_BACKEND`` environment variable;
5. the built-in default, ``accelerated``.

The equivalence suite (``tests/crypto/test_backend.py``) pins the two
providers to identical outputs on standard test vectors and randomized
inputs, so switching backends never changes any schedule, digest, MAC
or DRBG stream.
"""

from __future__ import annotations

import abc
import contextlib
import hashlib
import hmac as _stdlib_hmac
import os
from typing import Callable, Dict, Iterator, Union

ENV_VAR = "ERASMUS_CRYPTO_BACKEND"
DEFAULT_BACKEND_NAME = "accelerated"

#: Anything that designates a backend: a registered name, an instance,
#: or ``None`` meaning "use the resolved default".
BackendSpec = Union[str, "CryptoBackend", None]

_HMAC_HASHES = ("sha1", "sha256")


class CryptoBackend(abc.ABC):
    """One provider of the hash / HMAC / keyed-BLAKE2s primitives.

    Subclasses implement the three primitive families; the generic MAC
    dispatch (:meth:`mac`, :meth:`supports_mac`) is shared.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def hash_digest(self, hash_name: str, data: bytes) -> bytes:
        """One-shot hash digest (``sha1`` / ``sha256`` / ``blake2s``)."""

    @abc.abstractmethod
    def hmac_digest(self, hash_name: str, key: bytes, data: bytes) -> bytes:
        """One-shot HMAC digest under the named hash."""

    @abc.abstractmethod
    def keyed_blake2s(self, key: bytes, data: bytes,
                      digest_size: int = 32) -> bytes:
        """Keyed BLAKE2s MAC (RFC 7693 keyed mode)."""

    @abc.abstractmethod
    def digest_size(self, hash_name: str) -> int:
        """Digest size in bytes of the named hash."""

    def hmac_function(self, hash_name: str) -> Callable[[bytes, bytes], bytes]:
        """A fast ``(key, data) -> tag`` closure for hot loops.

        Resolving the hash name once lets callers like the HMAC-DRBG
        avoid per-call dispatch overhead.
        """
        hash_name = hash_name.lower()
        if hash_name not in _HMAC_HASHES:
            raise ValueError(f"unknown HMAC hash: {hash_name!r}")
        return lambda key, data: self.hmac_digest(hash_name, key, data)

    # ------------------------------------------------------------------
    # Generic MAC dispatch (the three constructions of paper Table 1)
    # ------------------------------------------------------------------
    def supports_mac(self, mac_name: str) -> bool:
        """True when :meth:`mac` can compute the named MAC natively."""
        return mac_name.lower() in ("hmac-sha1", "hmac-sha256",
                                    "keyed-blake2s")

    def mac(self, mac_name: str, key: bytes, data: bytes) -> bytes:
        """Compute a registered MAC construction by name."""
        lowered = mac_name.lower()
        if lowered == "hmac-sha1":
            return self.hmac_digest("sha1", key, data)
        if lowered == "hmac-sha256":
            return self.hmac_digest("sha256", key, data)
        if lowered == "keyed-blake2s":
            return self.keyed_blake2s(key, data)
        raise ValueError(f"backend {self.name!r} cannot compute MAC "
                         f"{mac_name!r}")

    def mac_function(self, mac_name: str, key: bytes
                     ) -> Callable[[bytes], bytes]:
        """A fast ``data -> tag`` closure with name and key pre-bound.

        Hot loops that verify thousands of tags under one device key
        (the fleet collection pipeline) resolve the construction and the
        key once instead of per call.
        """
        if not self.supports_mac(mac_name):
            raise ValueError(f"backend {self.name!r} cannot compute MAC "
                             f"{mac_name!r}")
        lowered = mac_name.lower()
        return lambda data: self.mac(lowered, key, data)

    def compare_digests(self, left: bytes, right: bytes) -> bool:
        """Constant-time tag comparison, provider-matched.

        The reference provider keeps the from-scratch constant-time
        idiom; the accelerated provider uses the stdlib's C
        implementation — same contract, same result, no timing leak.
        """
        from repro.crypto.constant_time import constant_time_compare
        return constant_time_compare(left, right)

    def __repr__(self) -> str:
        return f"<CryptoBackend {self.name!r}>"


class ReferenceBackend(CryptoBackend):
    """The from-scratch pure-Python implementations (paper-faithful)."""

    name = "reference"

    def hash_digest(self, hash_name: str, data: bytes) -> bytes:
        cls = self._hash_class(hash_name)
        return cls(data).digest()

    def hmac_digest(self, hash_name: str, key: bytes, data: bytes) -> bytes:
        from repro.crypto.hmac import Hmac
        return Hmac(key, data, hash_name=hash_name).digest()

    def keyed_blake2s(self, key: bytes, data: bytes,
                      digest_size: int = 32) -> bytes:
        from repro.crypto.blake2s import Blake2s
        return Blake2s(data, key=key, digest_size=digest_size).digest()

    def digest_size(self, hash_name: str) -> int:
        return self._hash_class(hash_name).digest_size

    @staticmethod
    def _hash_class(hash_name: str):
        from repro.crypto.blake2s import Blake2s
        from repro.crypto.sha1 import Sha1
        from repro.crypto.sha256 import Sha256
        classes = {"sha1": Sha1, "sha256": Sha256, "blake2s": Blake2s}
        try:
            return classes[hash_name.lower()]
        except KeyError as exc:
            raise ValueError(f"unknown hash: {hash_name!r}") from exc


class AcceleratedBackend(CryptoBackend):
    """The CPython stdlib (``hashlib`` / ``hmac``) — fast C primitives."""

    name = "accelerated"

    def hash_digest(self, hash_name: str, data: bytes) -> bytes:
        try:
            return hashlib.new(hash_name.lower(), data).digest()
        except ValueError as exc:
            raise ValueError(f"unknown hash: {hash_name!r}") from exc

    def hmac_digest(self, hash_name: str, key: bytes, data: bytes) -> bytes:
        return _stdlib_hmac.digest(key, data, hash_name.lower())

    def keyed_blake2s(self, key: bytes, data: bytes,
                      digest_size: int = 32) -> bytes:
        return hashlib.blake2s(data, key=key,
                               digest_size=digest_size).digest()

    def digest_size(self, hash_name: str) -> int:
        try:
            return hashlib.new(hash_name.lower()).digest_size
        except ValueError as exc:
            raise ValueError(f"unknown hash: {hash_name!r}") from exc

    def hmac_function(self, hash_name: str) -> Callable[[bytes, bytes], bytes]:
        hash_name = hash_name.lower()
        if hash_name not in _HMAC_HASHES:
            raise ValueError(f"unknown HMAC hash: {hash_name!r}")
        digest = _stdlib_hmac.digest
        return lambda key, data: digest(key, data, hash_name)

    def mac_function(self, mac_name: str, key: bytes
                     ) -> Callable[[bytes], bytes]:
        lowered = mac_name.lower()
        if lowered == "keyed-blake2s":
            blake2s = hashlib.blake2s
            return lambda data: blake2s(data, key=key).digest()
        if lowered == "hmac-sha1":
            digest = _stdlib_hmac.digest
            return lambda data: digest(key, data, "sha1")
        if lowered == "hmac-sha256":
            digest = _stdlib_hmac.digest
            return lambda data: digest(key, data, "sha256")
        raise ValueError(f"backend {self.name!r} cannot compute MAC "
                         f"{mac_name!r}")

    def compare_digests(self, left: bytes, right: bytes) -> bool:
        return _stdlib_hmac.compare_digest(left, right)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_BACKENDS: Dict[str, CryptoBackend] = {}
_default_override: str | None = None


def register_backend(backend: CryptoBackend) -> None:
    """Register a backend instance under its (lower-cased) name."""
    _BACKENDS[backend.name.lower()] = backend


def available_backends() -> list[str]:
    """Names of all registered backends, sorted."""
    return sorted(_BACKENDS)


def default_backend_name() -> str:
    """The name the current default resolves to (override > env > builtin)."""
    if _default_override is not None:
        return _default_override
    return os.environ.get(ENV_VAR, DEFAULT_BACKEND_NAME).lower()


def set_default_backend(name: str | None) -> None:
    """Install (or with ``None`` clear) the process-wide default backend."""
    global _default_override
    if name is None:
        _default_override = None
        return
    lowered = name.lower()
    if lowered not in _BACKENDS:
        known = ", ".join(available_backends())
        raise ValueError(f"unknown crypto backend {name!r}; known: {known}")
    _default_override = lowered


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[CryptoBackend]:
    """Temporarily make ``name`` the default backend (for tests/sweeps)."""
    global _default_override
    previous = _default_override
    set_default_backend(name)
    try:
        yield _BACKENDS[name.lower()]
    finally:
        _default_override = previous


def get_backend(name: BackendSpec = None) -> CryptoBackend:
    """Resolve a backend spec (name / instance / ``None``) to an instance."""
    if isinstance(name, CryptoBackend):
        return name
    if name is None:
        name = default_backend_name()
    try:
        return _BACKENDS[name.lower()]
    except KeyError as exc:
        known = ", ".join(available_backends())
        raise ValueError(
            f"unknown crypto backend {name!r}; known: {known}") from exc


#: Alias that reads better at call sites threading optional specs.
resolve_backend = get_backend


register_backend(ReferenceBackend())
register_backend(AcceleratedBackend())
