"""The ``python -m repro.statics`` front end: exit codes and outputs."""

import json

from repro.statics.cli import main

from tests.statics.helpers import write_tree

DIRTY = {"pkg/clock.py": "import time\nstamp = time.time()\n"}
CLEAN = {"pkg/ok.py": "value = 1\n"}


def run(tmp_path, *argv, monkeypatch=None, capsys=None):
    return main([str(tmp_path / "pkg"), *argv])


def test_clean_tree_exits_zero(tmp_path, capsys):
    write_tree(tmp_path, CLEAN)
    assert run(tmp_path) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_findings_exit_one_with_lint_lines(tmp_path, capsys):
    write_tree(tmp_path, DIRTY)
    assert run(tmp_path) == 1
    out = capsys.readouterr().out
    assert "determinism error" in out
    assert "clock.py:2:" in out


def test_json_output_to_file(tmp_path):
    write_tree(tmp_path, DIRTY)
    report = tmp_path / "report.json"
    assert run(tmp_path, "--format", "json",
               "--output", str(report)) == 1
    payload = json.loads(report.read_bytes())
    assert payload["tool"] == "repro.statics"
    assert [row["rule"] for row in payload["findings"]] == ["determinism"]


def test_select_restricts_the_rule_set(tmp_path):
    write_tree(tmp_path, DIRTY)
    assert run(tmp_path, "--select", "constant-time") == 0
    assert run(tmp_path, "--select", "determinism") == 1


def test_unknown_select_is_a_usage_error(tmp_path, capsys):
    assert main(["--select", "no-such-rule", str(tmp_path)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_list_rules_prints_the_catalog(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("constant-time", "determinism", "exact-fraction",
                 "lock-discipline", "codec", "obs-seam"):
        assert f"{rule}:" in out
    assert "invariant:" in out


def test_write_baseline_then_gate_is_clean(tmp_path, capsys):
    write_tree(tmp_path, DIRTY)
    baseline = tmp_path / "statics-baseline.json"
    assert run(tmp_path, "--write-baseline", str(baseline),
               "--justification", "pinned by the cli test") == 0
    assert baseline.exists()
    # With the baseline applied the same tree gates clean ...
    assert run(tmp_path, "--baseline", str(baseline)) == 0
    capsys.readouterr()
    # ... and --no-baseline still shows everything.
    assert run(tmp_path, "--no-baseline",
               "--baseline", str(baseline)) == 1


def test_malformed_baseline_is_a_usage_error(tmp_path, capsys):
    write_tree(tmp_path, CLEAN)
    bad = tmp_path / "statics-baseline.json"
    bad.write_text('{"version": 1, "entries": [{"rule": "codec", '
                   '"path": "a.py", "message": "m"}]}', encoding="utf-8")
    assert run(tmp_path, "--baseline", str(bad)) == 2
    assert "justification" in capsys.readouterr().err
