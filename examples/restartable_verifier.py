#!/usr/bin/env python3
"""Restartable verifier: crash mid-deployment, restore, keep attesting.

The verifier's record of each device — enrollment key, healthy digest,
newest-seen timestamp — *is* the security state of an ERASMUS
deployment: lose it and a rebooted verifier cannot tell a healthy
prover from one that went silent.  This example exercises the
`repro.store` persistence subsystem end to end:

1. provision 500 SMART+ devices with a :class:`JsonlStore` backing the
   verifier (snapshot + write-ahead journal in a state directory);
2. run one collection round — every enrollment advance and report is
   committed through the store, and the round checkpoints a snapshot;
3. "crash": throw the verifier object away (devices keep running, two
   of them stall and stop producing fresh measurements);
4. restore a brand-new :class:`FleetVerifier` from the state directory
   and check it reproduces the pre-crash fleet health byte-for-byte;
5. collect again with the restored verifier — the stalled devices must
   be flagged, the rest must verify healthy against their *pre-crash*
   last-seen timestamps.

Run with:  python examples/restartable_verifier.py
"""

import shutil
import tempfile

from repro.fleet import DeviceProfile, Fleet, FleetVerifier
from repro.store import JsonlStore

FLEET_SIZE = 500
STALLED = ("dev-0042", "dev-0311")
FIRMWARE = b"pump-firmware-v7" + bytes(240)
MASTER_SECRET = b"factory-provisioning-secret"


def main() -> None:
    profile = DeviceProfile.smartplus(firmware=FIRMWARE,
                                      application_size=512,
                                      measurement_interval=60.0,
                                      collection_interval=600.0,
                                      buffer_slots=16)
    state_dir = tempfile.mkdtemp(prefix="erasmus-verifier-state-")
    try:
        fleet = Fleet.provision(profile, FLEET_SIZE,
                                master_secret=MASTER_SECRET,
                                store=JsonlStore(state_dir))

        # --- round 1: the deployment before the crash -----------------
        fleet.run_until(600.0)
        first = fleet.collect_all()
        health_before = fleet.verifier.health.to_row()
        snapshot_before = fleet.verifier.store.state_bytes()
        last_seen_before = {
            device_id: fleet.verifier.last_seen(device_id)
            for device_id in fleet.device_ids()}
        healthy_first = sum(1 for report in first
                            if not report.detected_infection())
        print(f"round 1: {len(first)} reports, {healthy_first} healthy; "
              f"state in {state_dir}")

        # Two devices stall: from now on every self-measurement aborts,
        # so their buffers stop gaining fresh records.
        for device_id in STALLED:
            fleet.device(device_id).prover.critical_task_active = \
                lambda _time: True

        # --- the crash ------------------------------------------------
        # The verifier object (enrollment dict, health aggregate) dies
        # with the process; only the store directory survives.  The
        # devices, of course, keep running.
        del fleet.verifier
        fleet.run_until(1200.0)

        # --- restore --------------------------------------------------
        restored = FleetVerifier.restore(profile.config,
                                         JsonlStore(state_dir))
        if restored.health.to_row() != health_before:
            raise SystemExit("restored FleetHealth differs from pre-crash")
        if restored.device_count != FLEET_SIZE:
            raise SystemExit("restored verifier lost enrollments")
        mismatched = [device_id for device_id in last_seen_before
                      if restored.last_seen(device_id)
                      != last_seen_before[device_id]]
        if mismatched:
            raise SystemExit(
                f"last-seen drift after restore: {mismatched[:5]}")
        restored.checkpoint()
        if restored.store.state_bytes() != snapshot_before:
            raise SystemExit("re-checkpoint is not byte-identical")
        print(f"restored: {restored.device_count} enrollments, "
              f"health and last-seen timestamps intact, "
              f"re-checkpoint byte-identical")

        # --- round 2: the restored verifier carries on ----------------
        second = restored.collect_all(fleet.transport)
        flagged = sorted(report.device_id for report in second
                         if report.detected_infection())
        if flagged != sorted(STALLED):
            raise SystemExit(f"expected {sorted(STALLED)} flagged, "
                             f"got {flagged}")
        example = next(report for report in second
                       if report.device_id == STALLED[0])
        print(f"round 2: {len(second)} reports, stalled devices flagged: "
              f"{flagged}")
        print(f"example report — {example.summary()}")
        print(restored.health.summary())
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
