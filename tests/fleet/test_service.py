"""Tests for the FleetVerifier service, sinks and the Fleet facade."""

import io
import json

import pytest

from repro.core import DeviceStatus
from repro.fleet import (
    DeviceProfile,
    Fleet,
    FleetHealth,
    FleetHealthSink,
    JsonlSink,
    MemorySink,
)

FIRMWARE = b"service-test-firmware"
MALWARE = b"service-test-implant!"


def small_profile() -> DeviceProfile:
    return DeviceProfile.smartplus(firmware=FIRMWARE, application_size=256,
                                   measurement_interval=10.0,
                                   collection_interval=60.0,
                                   buffer_slots=8)


@pytest.fixture
def fleet() -> Fleet:
    return Fleet.provision(small_profile(), 20, master_secret=b"master")


def test_collect_all_produces_one_report_per_device(fleet):
    fleet.run_until(60.0)
    reports = fleet.collect_all()
    assert len(reports) == 20
    assert {report.device_id for report in reports} == set(fleet.device_ids())
    assert all(report.status is DeviceStatus.HEALTHY for report in reports)
    assert fleet.verifier.rounds_completed == 1


def test_staggered_schedules_spread_measurements(fleet):
    fleet.run_until(60.0)
    timestamps = set()
    for device in fleet.devices():
        timestamps.update(m.timestamp
                          for m in device.prover.store.all_measurements())
    # Without staggering every device would measure at the same 6
    # instants; with it the fleet spreads over the whole interval.
    assert len(timestamps) > 6 * 3


def test_batched_and_threaded_round_matches_serial(fleet):
    fleet.run_until(60.0)
    serial = fleet.collect_all()
    batched = fleet.collect_all(batch_size=7, max_workers=4)
    assert [r.device_id for r in serial] == [r.device_id for r in batched]
    assert all(report.status is DeviceStatus.HEALTHY for report in batched)


def test_transient_infection_flagged_in_round(fleet):
    fleet.run_until(20.0)
    fleet.device("dev-0003").load_application(MALWARE)
    fleet.run_until(40.0)
    fleet.device("dev-0003").load_application(FIRMWARE)
    fleet.run_until(60.0)
    reports = {report.device_id: report for report in fleet.collect_all()}
    assert reports["dev-0003"].status is DeviceStatus.INFECTED
    assert reports["dev-0003"].infected_timestamps
    assert reports["dev-0000"].status is DeviceStatus.HEALTHY
    assert fleet.health.flagged_devices == {"dev-0003"}


def test_second_round_only_judges_new_measurements(fleet):
    fleet.run_until(60.0)
    first = fleet.collect_all()
    fleet.run_until(120.0)
    second = fleet.collect_all()
    assert all(report.status is DeviceStatus.HEALTHY for report in first)
    assert all(report.status is DeviceStatus.HEALTHY for report in second)
    assert fleet.health.reports_total == 40


def test_device_unknown_to_transport_raises(fleet):
    fleet.run_until(60.0)
    # Enroll a device that exists for the verifier but not the transport.
    ghost = small_profile().provision("ghost", master_secret=b"master")
    fleet.verifier.enroll_device(ghost)
    with pytest.raises(KeyError):
        fleet.collect_all()


def test_unresponsive_devices_reported_no_data():
    fleet = Fleet.provision(
        small_profile(), 4, master_secret=b"master",
        transport="simulated-network",
        transport_options={"loss_probability": 1.0, "round_timeout": 2.0})
    fleet.run_until(60.0)
    reports = fleet.collect_all()
    assert len(reports) == 4
    assert all(report.status is DeviceStatus.NO_DATA for report in reports)
    assert all("no response received" in report.anomalies[0]
               for report in reports)
    assert reports[0].freshness is None
    assert reports[0].freshness_label == "n/a"


def test_sinks_receive_streamed_reports():
    memory = MemorySink()
    stream = io.StringIO()
    jsonl = JsonlSink(stream)
    fleet = Fleet.provision(small_profile(), 5, master_secret=b"master",
                            sinks=(memory, jsonl))
    fleet.run_until(60.0)
    fleet.collect_all()
    assert len(memory.reports) == 5
    assert jsonl.lines_written == 5
    rows = [json.loads(line) for line in stream.getvalue().splitlines()]
    assert {row["device_id"] for row in rows} == set(fleet.device_ids())
    assert all(row["status"] == "healthy" for row in rows)
    assert memory.for_device("dev-0002")


def test_jsonl_sink_writes_file(tmp_path):
    path = tmp_path / "reports.jsonl"
    sink = JsonlSink(str(path))
    fleet = Fleet.provision(small_profile(), 3, master_secret=b"master",
                            sinks=(sink,))
    fleet.run_until(60.0)
    fleet.collect_all()
    fleet.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 3
    assert json.loads(lines[0])["measurements"] > 0


def test_fleet_health_aggregation():
    health = FleetHealth()
    sink = FleetHealthSink(health)
    fleet = Fleet.provision(small_profile(), 8, master_secret=b"master",
                            sinks=(sink,))
    fleet.run_until(20.0)
    fleet.device("dev-0001").load_application(MALWARE)
    fleet.run_until(60.0)
    fleet.collect_all()
    assert health.devices_total == 8
    assert health.count(DeviceStatus.INFECTED) == 1
    assert health.healthy_fraction == pytest.approx(7 / 8)
    assert health.mean_freshness is not None
    assert "flagged devices: dev-0001" in health.summary()


def test_empty_fleet_health_summary_renders():
    health = FleetHealth()
    assert health.mean_freshness is None
    assert health.healthy_fraction == 0.0
    assert "0 device(s)" in health.summary()


def test_same_scenario_runs_on_every_named_transport():
    outcomes = {}
    for transport in ("in-process", "simulated-network", "swarm-relay"):
        fleet = Fleet.provision(small_profile(), 10,
                                master_secret=b"master",
                                transport=transport)
        fleet.run_until(60.0)
        reports = fleet.collect_all()
        outcomes[transport] = sorted(
            (report.device_id, report.status.value,
             report.measurement_count) for report in reports)
    assert outcomes["in-process"] == outcomes["simulated-network"]
    assert outcomes["in-process"] == outcomes["swarm-relay"]


def test_unknown_transport_name_rejected():
    with pytest.raises(ValueError):
        Fleet.provision(small_profile(), 2, master_secret=b"master",
                        transport="carrier-pigeon")


def test_verifier_refuses_unenrolled_device(fleet):
    with pytest.raises(KeyError):
        fleet.verifier.collect_all(fleet.transport, 0.0,
                                   device_ids=["nobody"])


def test_last_collection_time_tracked(fleet):
    fleet.run_until(60.0)
    fleet.collect_all()
    assert fleet.verifier.last_collection_time("dev-0000") == \
        pytest.approx(60.0)
    assert fleet.verifier.last_collection_time("missing") is None


def test_lossy_network_never_misflags_healthy_devices():
    """Regression: lost responses must not corrupt the round for others.

    A partially lossy round used to (a) drain the engine all the way to
    the transport timeout, jumping the fleet clock and letting provers
    self-measure mid-round, and (b) verify those batches against the
    round-start time — mass-flagging perfectly healthy devices as
    TAMPERED with "timestamped in the future".
    """
    fleet = Fleet.provision(
        small_profile(), 30, master_secret=b"master",
        transport="simulated-network",
        transport_options={"loss_probability": 0.2, "round_timeout": 30.0,
                           "seed": 7})
    fleet.run_until(60.0)
    reports = fleet.collect_all(batch_size=10)
    statuses = {report.status for report in reports}
    # Every device is either verified healthy or went unanswered —
    # never tampered/infected.
    assert statuses <= {DeviceStatus.HEALTHY, DeviceStatus.NO_DATA}
    assert DeviceStatus.NO_DATA in statuses  # losses did occur
    # The clock advanced only by actual round-trip time, not by the
    # 30 s timeout per batch.
    assert fleet.now < 61.0


def test_explicit_collection_time_still_honoured():
    fleet = Fleet.provision(small_profile(), 4, master_secret=b"master")
    fleet.run_until(60.0)
    reports = fleet.collect_all(collection_time=59.5)
    assert all(report.collection_time == 59.5 for report in reports)


def test_engineless_transport_requires_collection_time():
    from repro.fleet import FleetVerifier, InProcessTransport

    profile = small_profile()
    device = profile.provision("lone", master_secret=b"master")
    transport = InProcessTransport()  # no engine attached
    transport.register(device)
    verifier = FleetVerifier(profile.config)
    verifier.enroll_device(device)
    with pytest.raises(ValueError):
        verifier.collect_all(transport)


def test_profile_factories_reject_config_plus_overrides():
    from repro.core import ErasmusConfig
    config = ErasmusConfig(measurement_interval=10.0)
    with pytest.raises(ValueError):
        DeviceProfile.smartplus(config=config, measurement_interval=30.0)
    with pytest.raises(ValueError):
        DeviceProfile.hydra(config=config, buffer_slots=4)


class _ExplodingTransport:
    """A transport that fails after serving its first batch."""

    name = "exploding"
    engine = None

    def __init__(self, inner, explode_after: int):
        self._inner = inner
        self._exchanges = 0
        self._explode_after = explode_after

    def register(self, device):
        self._inner.register(device)

    def exchange_many(self, requests):
        self._exchanges += 1
        if self._exchanges > self._explode_after:
            raise ConnectionError("uplink lost mid-round")
        return self._inner.exchange_many(requests)


def test_transport_failure_mid_round_closes_sinks(tmp_path, fleet):
    """Reports verified before a mid-round transport failure hit disk."""
    path = tmp_path / "partial.jsonl"
    sink = JsonlSink(str(path))
    fleet.verifier.add_sink(sink)
    fleet.run_until(60.0)
    exploding = _ExplodingTransport(fleet.transport, explode_after=1)
    with pytest.raises(ConnectionError):
        fleet.verifier.collect_all(exploding, collection_time=60.0,
                                   batch_size=8)
    # The first batch's eight reports were flushed and the sink closed.
    lines = path.read_text().splitlines()
    assert len(lines) == 8
    assert sink.closed
    # Closing again (Fleet.close, context managers) stays harmless.
    sink.close()


def test_clean_round_flushes_but_keeps_sinks_open(tmp_path, fleet):
    path = tmp_path / "rounds.jsonl"
    sink = JsonlSink(str(path))
    fleet.verifier.add_sink(sink)
    fleet.run_until(60.0)
    fleet.collect_all()
    # Flushed to disk at end of round, but still open for the next one.
    assert len(path.read_text().splitlines()) == 20
    assert not sink.closed
    fleet.run_until(120.0)
    fleet.collect_all()
    assert len(path.read_text().splitlines()) == 40
    fleet.close()


def test_jsonl_sink_flush_every_bounds_data_loss(tmp_path):
    from repro.core.verification import VerificationReport

    path = tmp_path / "flushed.jsonl"
    sink = JsonlSink(str(path), flush_every=5)
    for index in range(7):
        sink.emit(VerificationReport(device_id=f"dev-{index}",
                                     collection_time=float(index),
                                     status=DeviceStatus.NO_DATA))
    # The fifth emit crossed the flush threshold: even if the process
    # dies now without close(), at most flush_every reports are lost.
    assert len(path.read_text().splitlines()) >= 5
    sink.close()
    assert len(path.read_text().splitlines()) == 7
    with pytest.raises(ValueError):
        JsonlSink(io.StringIO(), flush_every=0)


def test_retry_round_works_after_mid_round_failure(tmp_path, fleet):
    """A transient transport error must not poison later rounds."""
    path = tmp_path / "partial.jsonl"
    sink = JsonlSink(str(path))
    memory = MemorySink()
    fleet.verifier.add_sink(sink)
    fleet.verifier.add_sink(memory)
    fleet.run_until(60.0)
    exploding = _ExplodingTransport(fleet.transport, explode_after=1)
    with pytest.raises(ConnectionError):
        fleet.verifier.collect_all(exploding, collection_time=60.0,
                                   batch_size=8)
    # The closed JSONL sink was pruned; the memory sink survives and
    # the retry round completes normally.
    assert sink not in fleet.verifier.sinks
    assert memory in fleet.verifier.sinks
    retry = fleet.collect_all()
    assert len(retry) == 20
    assert len(memory.reports) == 28  # 8 from the failed round + 20


class _FlakySink(MemorySink):
    """A sink whose close / flush can be made to fail, with counters."""

    def __init__(self, fail_close: bool = False):
        super().__init__()
        self.fail_close = fail_close
        self.close_calls = 0
        self.flush_calls = 0
        self.closed = False

    def flush(self):
        self.flush_calls += 1

    def close(self):
        self.close_calls += 1
        self.closed = True
        if self.fail_close:
            raise OSError("backing stream gone")


def test_fleet_close_is_idempotent(tmp_path, fleet):
    sink = JsonlSink(str(tmp_path / "out.jsonl"))
    fleet.verifier.add_sink(sink)
    fleet.run_until(60.0)
    fleet.collect_all()
    fleet.close()
    assert sink.closed
    # A second close — context-manager exit after an explicit call,
    # double cleanup in a finally block — must be a silent no-op.
    fleet.close()
    with fleet:
        pass  # __exit__ is the third close


def test_fleet_close_after_mid_round_failure_does_not_raise(tmp_path, fleet):
    sink = JsonlSink(str(tmp_path / "partial.jsonl"))
    fleet.verifier.add_sink(sink)
    fleet.run_until(60.0)
    exploding = _ExplodingTransport(fleet.transport, explode_after=1)
    with pytest.raises(ConnectionError):
        fleet.verifier.collect_all(exploding, collection_time=60.0,
                                   batch_size=8)
    assert sink.closed  # the failed round closed it
    fleet.close()  # must not raise on the already-closed sink
    fleet.close()


def test_fleet_close_releases_everything_despite_sink_failure(fleet):
    bad = _FlakySink(fail_close=True)
    good = _FlakySink()
    fleet.verifier.add_sink(bad)
    fleet.verifier.add_sink(good)
    with pytest.raises(OSError):
        fleet.close()
    # The failing sink did not stop the later sink (or the store) from
    # being released, and the close is not retried on re-entry.
    assert good.close_calls == 1
    fleet.close()
    assert bad.close_calls == 1
    assert good.close_calls == 1


def test_sink_fanout_close_is_idempotent():
    from repro.fleet import SinkFanout

    sink = _FlakySink()
    fanout = SinkFanout([sink])
    fanout.close()
    fanout.close()
    assert sink.close_calls == 1
    # Flushing after closure skips the closed sink instead of raising
    # or double-flushing buffered data.
    fanout.flush()
    assert sink.flush_calls == 0


def test_sink_fanout_flush_skips_closed_sinks():
    from repro.fleet import SinkFanout

    open_sink, closed_sink = _FlakySink(), _FlakySink()
    closed_sink.close()
    fanout = SinkFanout([open_sink, closed_sink])
    with fanout:
        pass  # clean exit flushes
    assert open_sink.flush_calls == 1
    assert closed_sink.flush_calls == 0
    assert closed_sink.close_calls == 1


class _ExplodingFlushSink(_FlakySink):
    """A sink whose flush itself raises."""

    def flush(self):
        super().flush()
        raise OSError("flush target gone")


def test_sink_fanout_flush_reaches_every_sink_despite_failure():
    from repro.fleet import SinkFanout

    bad, late = _ExplodingFlushSink(), _FlakySink()
    fanout = SinkFanout([bad, late])
    # The failing sink must not strand reports buffered in the sinks
    # behind it: every sink is flushed, then the first error raises —
    # the same semantics close() has always had.
    with pytest.raises(OSError, match="flush target gone"):
        fanout.flush()
    assert bad.flush_calls == 1
    assert late.flush_calls == 1


def test_sink_fanout_flush_raises_first_error_of_several():
    from repro.fleet import SinkFanout

    first, second = _ExplodingFlushSink(), _ExplodingFlushSink()
    fanout = SinkFanout([first, second])
    with pytest.raises(OSError) as excinfo:
        fanout.flush()
    assert first.flush_calls == 1
    assert second.flush_calls == 1
    # Deterministically the *first* failure, not the last.
    assert excinfo.value is not None


def test_round_stats_carry_a_monotonic_wall_pair(fleet):
    fleet.run_until(60.0)
    stats = fleet.collect_all().stats
    assert stats.wall_end > stats.wall_start > 0.0
    assert stats.wall_seconds == stats.wall_end - stats.wall_start


def test_consecutive_rounds_have_ordered_wall_pairs(fleet):
    fleet.run_until(60.0)
    first = fleet.collect_all().stats
    fleet.run_until(120.0)
    second = fleet.collect_all().stats
    # One process-wide monotonic clock: round two started after round
    # one ended, and the pairs order the rounds without wall dates.
    assert second.wall_start >= first.wall_end


def test_merged_round_stats_bracket_their_parts():
    from repro.fleet import RoundStats

    parts = [
        RoundStats(requests_sent=4, wall_seconds=2.0, wall_start=10.0,
                   wall_end=12.0),
        RoundStats(requests_sent=6, wall_seconds=3.0, wall_start=11.0,
                   wall_end=14.0),
        RoundStats(requests_sent=1),  # never stamped: must not shrink
    ]
    merged = RoundStats.merged(parts)
    assert merged.requests_sent == 11
    assert merged.wall_seconds == 3.0  # slowest shard, as before
    assert merged.wall_start == 10.0
    assert merged.wall_end == 14.0
    unstamped = RoundStats.merged([RoundStats(requests_sent=2)])
    assert (unstamped.wall_start, unstamped.wall_end) == (0.0, 0.0)
