"""Tests for the fleet-native adversary layer."""

import random

import pytest

from repro.adversary import (
    FleetMobileMalware,
    FleetPersistentMalware,
    FleetScheduleAwareMalware,
    FleetTamperingMalware,
)
from repro.core.verification import DeviceStatus
from repro.fleet import Fleet
from repro.sim import SimulationEngine
from tests.fleet.helpers import small_profile

SECRET = b"fleet-adversary-master-secret"


def provision(count=6, engine=None, **overrides):
    engine = engine if engine is not None else SimulationEngine()
    return Fleet.provision(small_profile(b"adversary-firmware"), count,
                           master_secret=SECRET, engine=engine, **overrides)


class TestVictimSelection:
    def test_fraction_selects_deterministically(self):
        with provision() as fleet:
            roster = {d: fleet.device(d) for d in fleet.device_ids()}
            first = FleetPersistentMalware(roster, victim_fraction=0.5,
                                           seed=3)
            second = FleetPersistentMalware(roster, victim_fraction=0.5,
                                            seed=3)
            assert first.victims == second.victims
            assert len(first.victims) == 3
            assert all(v in roster for v in first.victims)

    def test_roster_accepts_device_iterable(self):
        with provision() as fleet:
            adversary = FleetPersistentMalware(fleet.devices(),
                                               victim_fraction=1.0)
            assert adversary.victims == sorted(fleet.device_ids())

    def test_explicit_victims_validated(self):
        with provision() as fleet:
            roster = fleet.devices()
            with pytest.raises(ValueError, match="not in the fleet roster"):
                FleetPersistentMalware(roster, victim_ids=["ghost-0001"])

    def test_ids_and_fraction_are_exclusive(self):
        with provision() as fleet:
            with pytest.raises(ValueError, match="not both"):
                FleetPersistentMalware(fleet.devices(),
                                       victim_ids=["dev-0000"],
                                       victim_fraction=0.5)

    def test_fraction_bounds(self):
        with provision() as fleet:
            for bad in (0.0, -0.1, 1.5):
                with pytest.raises(ValueError):
                    FleetPersistentMalware(fleet.devices(),
                                           victim_fraction=bad)

    def test_deploy_twice_rejected(self):
        engine = SimulationEngine()
        with provision(engine=engine) as fleet:
            adversary = FleetPersistentMalware(fleet.devices(),
                                               victim_ids=["dev-0000"])
            adversary.deploy(engine, 100.0)
            with pytest.raises(RuntimeError, match="already deployed"):
                adversary.deploy(engine, 100.0)


class TestFleetMobileMalware:
    def test_detected_when_dwell_spans_measurement(self):
        engine = SimulationEngine()
        with provision(engine=engine) as fleet:
            adversary = FleetMobileMalware(
                fleet.devices(), arrival_rate=1 / 30.0, dwell=25.0,
                victim_fraction=0.5, seed=1)
            adversary.deploy(engine, 120.0)
            fleet.run_until(60.0)
            reports = fleet.collect_all()
            fleet.run_until(120.0)
            infected = {r.device_id for r in reports
                        if r.status is DeviceStatus.INFECTED}
            assert infected
            assert infected <= set(adversary.victims)

    def test_ground_truth_intervals_closed_and_sorted(self):
        engine = SimulationEngine()
        with provision(engine=engine) as fleet:
            adversary = FleetMobileMalware(
                fleet.devices(), arrival_rate=1 / 20.0, dwell=8.0,
                victim_fraction=1.0, seed=4)
            adversary.deploy(engine, 200.0)
            fleet.run_until(200.0)
            truth = adversary.ground_truth()
            assert set(truth) == set(adversary.victims)
            for infections in truth.values():
                for infection in infections:
                    assert infection.end is not None
                    assert infection.end == pytest.approx(
                        infection.start + 8.0)
                starts = [i.start for i in infections]
                assert starts == sorted(starts)

    def test_visits_never_cross_horizon(self):
        engine = SimulationEngine()
        with provision(engine=engine) as fleet:
            adversary = FleetMobileMalware(
                fleet.devices(), arrival_rate=1 / 10.0, mean_dwell=15.0,
                victim_fraction=1.0, seed=9)
            adversary.deploy(engine, 150.0)
            for plan in adversary.visits.values():
                for start, dwell in plan:
                    assert start + dwell <= 150.0

    def test_same_seed_same_plan(self):
        plans = []
        for _ in range(2):
            engine = SimulationEngine()
            with provision(engine=engine) as fleet:
                adversary = FleetMobileMalware(
                    fleet.devices(), arrival_rate=1 / 25.0, mean_dwell=12.0,
                    victim_fraction=0.5, seed=11)
                adversary.deploy(engine, 300.0)
                plans.append(adversary.visits)
        assert plans[0] == plans[1]

    def test_single_device_devices_restored_after_visit(self):
        engine = SimulationEngine()
        with provision(engine=engine) as fleet:
            victim = fleet.device_ids()[0]
            adversary = FleetMobileMalware(
                fleet.devices(), arrival_rate=1 / 30.0, dwell=5.0,
                victim_ids=[victim], seed=2)
            adversary.deploy(engine, 100.0)
            fleet.run_until(100.0)
            malware = adversary.malware[victim]
            assert not malware.currently_active
            assert fleet.device(victim).architecture.application_read(
                "application").startswith(b"adversary-firmware")


class TestFleetPersistentMalware:
    def test_every_victim_eventually_flagged(self):
        engine = SimulationEngine()
        with provision(engine=engine) as fleet:
            adversary = FleetPersistentMalware(
                fleet.devices(), victim_fraction=0.5, seed=5)
            adversary.deploy(engine, 120.0)
            fleet.run_until(120.0)
            reports = fleet.collect_all()
            infected = {r.device_id for r in reports
                        if r.status is DeviceStatus.INFECTED}
            assert infected == set(adversary.victims)

    def test_arrival_window_bounds_arrivals(self):
        engine = SimulationEngine()
        with provision(engine=engine) as fleet:
            adversary = FleetPersistentMalware(
                fleet.devices(), victim_fraction=1.0, arrival_window=0.25,
                seed=6)
            adversary.deploy(engine, 400.0)
            fleet.run_until(400.0)
            for infections in adversary.ground_truth().values():
                assert len(infections) == 1
                assert 0.0 <= infections[0].start < 100.0
                assert infections[0].end is None


class TestFleetTamperingMalware:
    def test_tampered_status_reported(self):
        engine = SimulationEngine()
        with provision(engine=engine) as fleet:
            adversary = FleetTamperingMalware(
                fleet.devices(), times=[55.0], victim_fraction=0.5, seed=7)
            adversary.deploy(engine, 60.0)
            fleet.run_until(60.0)
            reports = fleet.collect_all()
            tampered = {r.device_id for r in reports
                        if r.status is DeviceStatus.TAMPERED}
            assert tampered == set(adversary.victims)
            truth = adversary.ground_truth()
            assert set(truth) == set(adversary.victims)
            for infections in truth.values():
                assert [i.start for i in infections] == [55.0]

    def test_unknown_action_rejected(self):
        with provision() as fleet:
            with pytest.raises(ValueError, match="unknown tamper action"):
                FleetTamperingMalware(fleet.devices(), times=[10.0],
                                      action="set_on_fire")

    def test_times_beyond_horizon_skipped(self):
        engine = SimulationEngine()
        with provision(engine=engine) as fleet:
            adversary = FleetTamperingMalware(
                fleet.devices(), times=[10.0, 500.0], victim_fraction=0.5,
                seed=8)
            adversary.deploy(engine, 60.0)
            fleet.run_until(60.0)
            for infections in adversary.ground_truth().values():
                assert [i.start for i in infections] == [10.0]


class TestFleetScheduleAwareMalware:
    def test_evades_regular_schedule_with_short_dwell(self):
        engine = SimulationEngine()
        with provision(engine=engine) as fleet:
            adversary = FleetScheduleAwareMalware(
                fleet.devices(), dwell=5.0, victim_fraction=1.0, seed=10)
            adversary.deploy(engine, 120.0)
            fleet.run_until(60.0)
            reports = fleet.collect_all()
            fleet.run_until(120.0)
            # T_M = 10 and entries land right after measurements, so a
            # 5 s dwell always exits before the next measurement.
            assert all(r.status is DeviceStatus.HEALTHY for r in reports)
            assert any(adversary.ground_truth().values())

    def test_caught_when_dwell_exceeds_interval(self):
        engine = SimulationEngine()
        with provision(engine=engine) as fleet:
            adversary = FleetScheduleAwareMalware(
                fleet.devices(), dwell=12.0, victim_fraction=1.0, seed=10)
            adversary.deploy(engine, 120.0)
            fleet.run_until(60.0)
            reports = fleet.collect_all()
            fleet.run_until(120.0)
            infected = {r.device_id for r in reports
                        if r.status is DeviceStatus.INFECTED}
            assert infected == set(adversary.victims)

    def test_listener_does_not_touch_scheduler(self):
        engine = SimulationEngine()
        with provision(engine=engine) as fleet:
            victim = fleet.device_ids()[0]
            prover = fleet.device(victim).prover
            state_before = random.getstate()
            adversary = FleetScheduleAwareMalware(
                fleet.devices(), dwell=3.0, victim_ids=[victim], seed=12)
            adversary.deploy(engine, 50.0)
            assert len(prover.measurement_listeners) == 1
            fleet.run_until(50.0)
            assert random.getstate() == state_before
