"""Timer peripherals that drive autonomous self-measurement.

In SMART+-based ERASMUS the measurement routine is invoked "periodically
and autonomously, whenever a scheduled timer interrupt occurs"; in HYDRA
the Enhanced Periodic Interrupt Timer (EPIT) plays the same role.  The
paper notes that hardware timers are not counted as extra hardware cost
because every real embedded device already has at least one.

For irregular scheduling (Section 3.5) the timer's next expiration must
be *read-protected* so that malware cannot learn when the next
measurement will fire; :class:`PeriodicTimer` models that with the
``deadline_secret`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.engine import SimulationEngine
from repro.sim.events import Event, EventKind


class TimerReadProtected(Exception):
    """Raised when untrusted code reads a protected timer deadline."""


@dataclass
class TimerExpiration:
    """Details passed to the timer callback on every expiration."""

    time: float
    count: int


class PeriodicTimer:
    """A (re-)programmable timer attached to the simulation engine.

    The owner programs the next interval (fixed or computed anew after
    every expiration, e.g. from the CSPRNG for irregular schedules) and
    receives a callback with a :class:`TimerExpiration`.
    """

    def __init__(self, engine: SimulationEngine,
                 callback: Callable[[TimerExpiration], None],
                 deadline_secret: bool = False,
                 name: str = "timer") -> None:
        self._engine = engine
        self._callback = callback
        self._pending: Optional[Event] = None
        self._next_deadline: Optional[float] = None
        self.deadline_secret = deadline_secret
        self.name = name
        self.expirations = 0

    def arm(self, delay: float) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        self.cancel()
        self._next_deadline = self._engine.now + delay
        self._pending = self._engine.schedule(
            self._next_deadline, self._fire, EventKind.TIMER,
            payload=self.name)

    def cancel(self) -> None:
        """Cancel any pending expiration."""
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
            self._next_deadline = None

    def is_armed(self) -> bool:
        """True when an expiration is pending."""
        return self._pending is not None and not self._pending.cancelled

    def read_deadline(self, trusted: bool = False) -> Optional[float]:
        """Read the absolute time of the next expiration.

        When the timer is configured with ``deadline_secret=True`` (the
        irregular-interval case), untrusted readers are refused — malware
        must not learn when the next measurement will happen.
        """
        if self.deadline_secret and not trusted:
            raise TimerReadProtected(
                f"timer {self.name!r} deadline is read-protected")
        return self._next_deadline

    def _fire(self, _event: Event) -> None:
        self._pending = None
        self._next_deadline = None
        self.expirations += 1
        self._callback(TimerExpiration(time=self._engine.now,
                                       count=self.expirations))
