"""Tests for the swarm attestation protocols under mobility."""

import pytest

from repro.net.mobility import RandomWaypointMobility
from repro.swarm import (
    ErasmusSwarmCollection,
    LisaAlphaProtocol,
    LisaSelfProtocol,
    QoSALevel,
    SedaProtocol,
    build_swarm,
)


def make_mobility(names, speed, seed=3):
    return RandomWaypointMobility(names, area_size=120.0, radio_range=45.0,
                                  speed=speed, seed=seed)


@pytest.fixture
def swarm():
    return build_swarm(25, memory_bytes=10 * 1024)


def names_of(swarm):
    return [device.device_id for device in swarm]


def test_static_swarm_fully_attested_by_all_protocols(swarm):
    for protocol in (SedaProtocol(), LisaAlphaProtocol(), LisaSelfProtocol(),
                     ErasmusSwarmCollection()):
        mobility = make_mobility(names_of(swarm), speed=0.0)
        result = protocol.run(swarm, mobility, gateway="dev0")
        assert result.complete, protocol.name
        assert result.coverage == 1.0
        assert not result.failed_ids


def test_on_demand_duration_dominated_by_measurement(swarm):
    mobility = make_mobility(names_of(swarm), speed=0.0)
    result = LisaAlphaProtocol().run(swarm, mobility, gateway="dev0")
    assert result.duration >= swarm[0].compute_time


def test_erasmus_collection_orders_of_magnitude_faster(swarm):
    on_demand = LisaAlphaProtocol().run(
        swarm, make_mobility(names_of(swarm), speed=0.0), gateway="dev0")
    erasmus = ErasmusSwarmCollection().run(
        swarm, make_mobility(names_of(swarm), speed=0.0), gateway="dev0")
    assert erasmus.duration < on_demand.duration / 10


def test_mobility_degrades_on_demand_but_not_erasmus(swarm):
    on_demand_coverage = []
    erasmus_coverage = []
    for seed in (3, 4, 5):
        on_demand = LisaAlphaProtocol().run(
            swarm, make_mobility(names_of(swarm), speed=6.0, seed=seed),
            gateway="dev0")
        erasmus = ErasmusSwarmCollection().run(
            swarm, make_mobility(names_of(swarm), speed=6.0, seed=seed),
            gateway="dev0")
        on_demand_coverage.append(on_demand.coverage)
        erasmus_coverage.append(erasmus.coverage)
    assert sum(erasmus_coverage) > sum(on_demand_coverage)
    assert min(erasmus_coverage) > 0.9


def test_seda_aggregation_loses_subtrees(swarm):
    # With aggregation, a broken link near the gateway can cost many
    # devices at once; SEDA coverage is never better than LISA-alpha's.
    for seed in (3, 7, 9):
        seda = SedaProtocol().run(
            swarm, make_mobility(names_of(swarm), speed=6.0, seed=seed),
            gateway="dev0")
        lisa = LisaAlphaProtocol().run(
            swarm, make_mobility(names_of(swarm), speed=6.0, seed=seed),
            gateway="dev0")
        assert seda.devices_attested <= lisa.devices_attested


def test_qosa_levels_reported():
    assert SedaProtocol().qosa_level is QoSALevel.BINARY
    assert LisaAlphaProtocol().qosa_level is QoSALevel.LIST
    assert LisaSelfProtocol().qosa_level is QoSALevel.FULL
    assert ErasmusSwarmCollection().qosa_level is QoSALevel.LIST


def test_result_bookkeeping(swarm):
    mobility = make_mobility(names_of(swarm), speed=2.0)
    result = SedaProtocol().run(swarm, mobility, gateway="dev0")
    assert result.devices_total == len(swarm)
    assert result.devices_attested == len(result.attested_ids)
    assert set(result.attested_ids).isdisjoint(result.failed_ids)
    assert len(result.attested_ids) + len(result.failed_ids) == len(swarm)


def test_unknown_gateway_rejected(swarm):
    with pytest.raises(KeyError):
        SedaProtocol().run(swarm, make_mobility(names_of(swarm), 0.0),
                           gateway="not-a-device")


def test_invalid_protocol_parameters():
    with pytest.raises(ValueError):
        SedaProtocol(hop_delay=0.0)
    with pytest.raises(ValueError):
        LisaSelfProtocol(sequencing_overhead=-1.0)


def test_build_swarm_validation():
    with pytest.raises(ValueError):
        build_swarm(0)
    devices = build_swarm(3, memory_bytes=1024)
    assert len({device.device_id for device in devices}) == 3
    assert devices[0].attestation_service_time(on_demand=True) > \
        devices[0].attestation_service_time(on_demand=False)


def test_topology_query_before_start_raises():
    """A pre-start query must fail loudly, not alias the start snapshot."""
    from repro.swarm.protocols import _TopologySampler

    mobility = make_mobility([f"dev{i}" for i in range(6)], speed=2.0)
    sampler = _TopologySampler(mobility, start_time=10.0)
    start_edges = sampler.edges_at(10.0)
    assert sampler.edges_at(10.05) == start_edges  # same snapshot step
    with pytest.raises(ValueError):
        sampler.edges_at(9.9)
    with pytest.raises(ValueError):
        sampler.link_alive("dev0", "dev1", 0.0)
