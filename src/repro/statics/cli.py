"""``python -m repro.statics`` — run the invariant lint.

Usage::

    python -m repro.statics src tests
    python -m repro.statics --format json --output statics-report.json src
    python -m repro.statics --list-rules
    python -m repro.statics --write-baseline statics-baseline.json \
        --justification "grandfathered pending cleanup" src

Exit codes: 0 clean (every finding baselined or pragma-suppressed),
1 findings, 2 usage/baseline errors.  When ``statics-baseline.json``
exists in the working directory it is applied automatically; pass
``--no-baseline`` to see everything.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.statics.baseline import (
    DEFAULT_BASELINE_NAME, Baseline, BaselineError,
)
from repro.statics.checkers import all_checkers
from repro.statics.engine import scan_paths
from repro.statics.report import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.statics",
        description="Invariant lint engine for the attestation stack.")
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files/directories to scan "
                             "(default: src tests)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--output", metavar="FILE",
                        help="write the report to FILE instead of stdout")
    parser.add_argument("--baseline", metavar="FILE",
                        help=f"baseline file (default: "
                             f"./{DEFAULT_BASELINE_NAME} when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write current findings to FILE as the new "
                             "baseline and exit 0")
    parser.add_argument("--justification", metavar="TEXT",
                        default="grandfathered pending cleanup",
                        help="justification recorded on entries written "
                             "by --write-baseline")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        checkers = all_checkers(
            args.select.split(",") if args.select else None)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.list_rules:
        for checker in checkers:
            print(f"{checker.rule}: {checker.description}")
            print(f"    invariant: {checker.invariant}")
        return 0

    baseline = None
    if not args.no_baseline and args.write_baseline is None:
        baseline_path = Path(args.baseline) if args.baseline \
            else Path(DEFAULT_BASELINE_NAME)
        if args.baseline or baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except BaselineError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2

    result = scan_paths([Path(path) for path in args.paths], checkers,
                        baseline=baseline)

    if args.write_baseline is not None:
        try:
            Baseline.from_findings(
                result.findings,
                args.justification).save(args.write_baseline)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {len(result.findings)} entr"
              f"{'y' if len(result.findings) == 1 else 'ies'} to "
              f"{args.write_baseline}")
        return 0

    rendered = render_json(result) if args.format == "json" \
        else render_text(result).encode("utf-8")
    if args.output:
        Path(args.output).write_bytes(rendered)
    else:
        sys.stdout.buffer.write(rendered)
        sys.stdout.buffer.flush()
    return 0 if result.clean else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
