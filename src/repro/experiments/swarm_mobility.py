"""Section 6 — swarm attestation under mobility.

On-demand swarm protocols (SEDA, LISA-α, LISA-s) require the topology
to hold still for the duration of the protocol, which is dominated by
every device's measurement computation (seconds on low-end devices).
The ERASMUS collection finishes in network round-trip time.  This
harness sweeps device speed in a random-waypoint swarm and reports, per
protocol, the attestation coverage and instance duration.

Expected shape: at speed 0 every protocol attests the whole (connected)
swarm; as speed grows, the coverage of the on-demand protocols drops
while the ERASMUS collection stays essentially complete and finishes
orders of magnitude faster.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.net.mobility import RandomWaypointMobility
from repro.swarm.device import build_swarm
from repro.swarm.protocols import (
    ErasmusSwarmCollection,
    LisaAlphaProtocol,
    LisaSelfProtocol,
    SedaProtocol,
    SwarmRAProtocol,
)

DEFAULT_SPEEDS: Sequence[float] = (0.0, 1.0, 2.0, 4.0, 8.0)


def default_protocols() -> List[SwarmRAProtocol]:
    """The four protocols compared in the experiment."""
    return [SedaProtocol(), LisaAlphaProtocol(), LisaSelfProtocol(),
            ErasmusSwarmCollection()]


def run(device_count: int = 30, speeds: Sequence[float] = DEFAULT_SPEEDS,
        memory_bytes: int = 10 * 1024, area_size: float = 120.0,
        radio_range: float = 45.0, seed: int = 3,
        repetitions: int = 3) -> List[Dict[str, object]]:
    """Sweep device speed for every protocol.

    Each (speed, protocol) cell averages ``repetitions`` runs with
    different mobility seeds.  Returns one row per cell with the mean
    coverage and duration.
    """
    devices = build_swarm(device_count, memory_bytes=memory_bytes)
    names = [device.device_id for device in devices]
    rows: List[Dict[str, object]] = []
    for speed in speeds:
        for protocol in default_protocols():
            coverages = []
            durations = []
            for repetition in range(repetitions):
                mobility = RandomWaypointMobility(
                    names, area_size=area_size, radio_range=radio_range,
                    speed=speed, seed=seed + repetition)
                result = protocol.run(devices, mobility, gateway=names[0])
                coverages.append(result.coverage)
                durations.append(result.duration)
            rows.append({
                "speed": speed,
                "protocol": protocol.name,
                "coverage": sum(coverages) / len(coverages),
                "duration_s": sum(durations) / len(durations),
                "repetitions": repetitions,
            })
    return rows


def coverage_by_protocol(rows: List[Dict[str, object]],
                         speed: float) -> Dict[str, float]:
    """Coverage of each protocol at one speed."""
    return {str(row["protocol"]): float(row["coverage"])
            for row in rows if row["speed"] == speed}


def format_table(rows: List[Dict[str, object]]) -> str:
    """Render the mobility sweep as a text table."""
    lines = ["Section 6: swarm attestation coverage and duration vs mobility"]
    lines.append(f"{'speed (m/s)':>12}{'protocol':>22}{'coverage':>10}"
                 f"{'duration (s)':>14}")
    for row in rows:
        lines.append(f"{row['speed']:>12.1f}{row['protocol']:>22}"
                     f"{row['coverage']:>10.2f}{row['duration_s']:>14.3f}")
    return "\n".join(lines)


def main() -> None:
    """Print the mobility sweep."""
    print(format_table(run()))


if __name__ == "__main__":
    main()
