"""Tests for the protocol message encodings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CollectRequest,
    CollectResponse,
    Measurement,
    OnDemandRequest,
    OnDemandResponse,
)
from repro.core.protocol import ProtocolDecodeError


def record(timestamp: float) -> Measurement:
    return Measurement(timestamp=timestamp, digest=bytes([int(timestamp)]) * 32,
                       tag=b"\x99" * 32)


def test_collect_request_roundtrip():
    request = CollectRequest(k=7)
    assert CollectRequest.decode(request.encode()) == request


def test_collect_request_invalid():
    with pytest.raises(ValueError):
        CollectRequest(k=-1).encode()
    with pytest.raises(ProtocolDecodeError):
        CollectRequest.decode(b"\xFF\x00\x00\x00\x07")
    with pytest.raises(ProtocolDecodeError):
        CollectRequest.decode(b"\x01")


def test_collect_response_roundtrip():
    response = CollectResponse(measurements=[record(30.0), record(20.0)])
    decoded = CollectResponse.decode(response.encode())
    assert len(decoded.measurements) == 2
    assert decoded.measurements[0].timestamp == pytest.approx(30.0)
    assert decoded.measurements[1].digest == record(20.0).digest


def test_empty_collect_response_roundtrip():
    decoded = CollectResponse.decode(CollectResponse().encode())
    assert decoded.measurements == []


def test_collect_response_rejects_corruption():
    encoded = CollectResponse(measurements=[record(30.0)]).encode()
    with pytest.raises(ProtocolDecodeError):
        CollectResponse.decode(encoded[:-4])
    with pytest.raises(ProtocolDecodeError):
        CollectResponse.decode(encoded + b"\x00")
    with pytest.raises(ProtocolDecodeError):
        CollectResponse.decode(b"\x07" + encoded[1:])


def test_ondemand_request_roundtrip():
    request = OnDemandRequest(request_time=101.5, k=4, tag=b"\x42" * 32)
    decoded = OnDemandRequest.decode(request.encode())
    assert decoded.request_time == pytest.approx(101.5)
    assert decoded.k == 4
    assert decoded.tag == b"\x42" * 32


def test_ondemand_request_rejects_bad_payload():
    with pytest.raises(ProtocolDecodeError):
        OnDemandRequest.decode(b"\x03\x00")
    encoded = OnDemandRequest(request_time=1.0, k=1, tag=b"\x00" * 32).encode()
    with pytest.raises(ProtocolDecodeError):
        OnDemandRequest.decode(encoded[:-1])


def test_ondemand_response_roundtrip_with_fresh():
    response = OnDemandResponse(fresh=record(50.0),
                                measurements=[record(40.0), record(30.0)])
    decoded = OnDemandResponse.decode(response.encode())
    assert decoded.fresh is not None
    assert decoded.fresh.timestamp == pytest.approx(50.0)
    assert [m.timestamp for m in decoded.measurements] == [40.0, 30.0]


def test_ondemand_response_roundtrip_refusal():
    decoded = OnDemandResponse.decode(
        OnDemandResponse(fresh=None, measurements=[]).encode())
    assert decoded.fresh is None
    assert decoded.measurements == []


def test_response_size_reflects_measurement_count():
    small = CollectResponse(measurements=[record(1.0)])
    large = CollectResponse(measurements=[record(float(t)) for t in range(10)])
    assert large.size_bytes > small.size_bytes


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                max_size=12))
def test_collect_response_roundtrip_property(timestamps):
    response = CollectResponse(measurements=[record(min(t, 255.0))
                                             for t in timestamps])
    decoded = CollectResponse.decode(response.encode())
    assert len(decoded.measurements) == len(timestamps)


# ----------------------------------------------------------------------
# Decode error paths (truncation, wrong types, oversized k)
# ----------------------------------------------------------------------

def test_collect_request_rejects_oversized_k():
    from repro.core.protocol import _COLLECT_HEADER, MAX_K
    with pytest.raises(ValueError):
        CollectRequest(k=MAX_K + 1).encode()
    oversized = _COLLECT_HEADER.pack(1, MAX_K + 1)
    with pytest.raises(ProtocolDecodeError):
        CollectRequest.decode(oversized)
    # The boundary value itself round-trips.
    assert CollectRequest.decode(CollectRequest(k=MAX_K).encode()).k == MAX_K


def test_ondemand_request_rejects_oversized_k():
    from repro.core.protocol import MAX_K
    with pytest.raises(ValueError):
        OnDemandRequest(request_time=1.0, k=MAX_K + 1, tag=b"\x00" * 32).encode()


def test_collect_response_rejects_truncated_record():
    encoded = CollectResponse(measurements=[record(30.0), record(20.0)]).encode()
    for cut in (len(encoded) - 1, len(encoded) - 20, len(encoded) - 40):
        with pytest.raises(ProtocolDecodeError):
            CollectResponse.decode(encoded[:cut])


def test_collect_response_rejects_record_length_past_payload():
    import struct
    # One record whose declared length points past the end of the payload.
    header = struct.pack(">BH", 2, 1)
    bogus = header + struct.pack(">H", 500) + b"\x00" * 10
    with pytest.raises(ProtocolDecodeError):
        CollectResponse.decode(bogus)


def test_responses_reject_wrong_message_type():
    collect_encoded = CollectResponse(measurements=[record(30.0)]).encode()
    ondemand_encoded = OnDemandResponse(fresh=record(30.0)).encode()
    with pytest.raises(ProtocolDecodeError):
        OnDemandResponse.decode(collect_encoded)
    with pytest.raises(ProtocolDecodeError):
        CollectResponse.decode(ondemand_encoded)


def test_ondemand_response_rejects_truncated_payload():
    encoded = OnDemandResponse(fresh=record(50.0),
                               measurements=[record(40.0)]).encode()
    with pytest.raises(ProtocolDecodeError):
        OnDemandResponse.decode(encoded[:2])
    with pytest.raises(ProtocolDecodeError):
        OnDemandResponse.decode(encoded[:-5])


def test_ondemand_response_rejects_fresh_flag_without_records():
    import struct
    bogus = struct.pack(">BH", 4, 0) + b"\x01"
    with pytest.raises(ProtocolDecodeError):
        OnDemandResponse.decode(bogus)


def test_decode_request_dispatches_by_type():
    from repro.core.protocol import decode_request
    collect = decode_request(CollectRequest(k=3).encode())
    assert isinstance(collect, CollectRequest)
    ondemand = decode_request(
        OnDemandRequest(request_time=5.0, k=2, tag=b"\x01" * 32).encode())
    assert isinstance(ondemand, OnDemandRequest)
    with pytest.raises(ProtocolDecodeError):
        decode_request(b"")
    with pytest.raises(ProtocolDecodeError):
        decode_request(b"\x09rest")
    # Responses are not requests.
    with pytest.raises(ProtocolDecodeError):
        decode_request(CollectResponse().encode())


def test_decode_response_dispatches_by_type():
    from repro.core.protocol import decode_response
    collect = decode_response(CollectResponse([record(1.0)]).encode())
    assert isinstance(collect, CollectResponse)
    ondemand = decode_response(OnDemandResponse(fresh=record(2.0)).encode())
    assert isinstance(ondemand, OnDemandResponse)
    with pytest.raises(ProtocolDecodeError):
        decode_response(b"")
    with pytest.raises(ProtocolDecodeError):
        decode_response(CollectRequest(k=1).encode())


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=0xFFFF))
def test_collect_request_roundtrip_property(k):
    assert CollectRequest.decode(CollectRequest(k=k).encode()).k == k


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
       st.integers(min_value=0, max_value=0xFFFF),
       st.binary(min_size=0, max_size=64))
def test_ondemand_request_roundtrip_property(request_time, k, tag):
    request = OnDemandRequest(request_time=request_time, k=k, tag=tag)
    decoded = OnDemandRequest.decode(request.encode())
    assert decoded.k == k
    assert decoded.tag == tag
    assert decoded.request_time == pytest.approx(request_time, abs=1e-6)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=255, allow_nan=False),
                max_size=8),
       st.booleans())
def test_ondemand_response_roundtrip_property(timestamps, with_fresh):
    fresh = record(77.0) if with_fresh else None
    response = OnDemandResponse(fresh=fresh,
                                measurements=[record(t) for t in timestamps])
    decoded = OnDemandResponse.decode(response.encode())
    assert (decoded.fresh is not None) == with_fresh
    assert len(decoded.measurements) == len(timestamps)


@settings(max_examples=60, deadline=None)
@given(st.binary(min_size=0, max_size=80))
def test_decoders_never_crash_on_fuzz(payload):
    """Arbitrary bytes either decode cleanly or raise ProtocolDecodeError."""
    from repro.core.protocol import decode_request, decode_response
    for decoder in (decode_request, decode_response):
        try:
            decoder(payload)
        except ProtocolDecodeError:
            pass
