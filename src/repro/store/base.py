"""The durable-verifier-state contract: snapshots plus a report journal.

For a long-lived unattended deployment the verifier's record of each
device — enrollment key, healthy digests, newest-seen timestamp — *is*
the security state: lose it and a rebooted verifier cannot be told
apart from a rolled-back one.  A :class:`StateStore` is the seam that
makes that state durable without the verifier caring how:

* :meth:`StateStore.save_enrollment` — write-through for every
  enrollment change (new device, digest whitelist, last-seen advance);
* :meth:`StateStore.append_report` — a write-ahead journal of finished
  :class:`~repro.core.verification.VerificationReport` rows;
* :meth:`StateStore.checkpoint` — fold everything accepted so far into
  one canonical snapshot (enrollments, :class:`FleetHealth` aggregate,
  last collection times, journal position);
* :meth:`StateStore.restore_state` — snapshot plus journal tail
  replayed into a :class:`RestoredState`, from which
  :meth:`repro.fleet.FleetVerifier.restore` resumes a deployment.

The snapshot document is canonical: enrollments sorted by device id,
digest sets sorted, JSON emitted with sorted keys.  Checkpointing the
same logical state therefore always produces the same bytes
(:meth:`StateStore.state_bytes`), which is what the kill-and-restore
tests assert.
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.verification import Enrollment, VerificationReport

#: Version tag written into every snapshot document.
SNAPSHOT_VERSION = 1

Row = Dict[str, object]


class StoreError(RuntimeError):
    """A state store could not read or write its backing medium."""


def _new_health():
    # Imported lazily: repro.fleet.sinks imports repro.core.verification,
    # and importing it at module scope here would close an import cycle
    # through repro.fleet.service.
    from repro.fleet.sinks import FleetHealth
    return FleetHealth()


@dataclass
class RestoredState:
    """Everything a verifier needs to resume a deployment."""

    enrollments: Dict[str, Enrollment] = field(default_factory=dict)
    health: Any = None
    last_collection_times: Dict[str, float] = field(default_factory=dict)
    rounds_completed: int = 0
    replayed_reports: int = 0

    def __post_init__(self) -> None:
        if self.health is None:
            self.health = _new_health()


def snapshot_document(enrollments: Mapping[str, Enrollment],
                      health: Any,
                      last_collection_times: Mapping[str, float],
                      rounds_completed: int,
                      journal_seq: int) -> Row:
    """Build the canonical snapshot document for one checkpoint."""
    return {
        "version": SNAPSHOT_VERSION,
        "journal_seq": journal_seq,
        "rounds_completed": rounds_completed,
        "enrollments": [enrollment.to_row() for _, enrollment
                        in sorted(enrollments.items())],
        "health": None if health is None else health.to_row(),
        "last_collection_times": dict(sorted(
            last_collection_times.items())),
    }


def encode_snapshot(document: Row) -> bytes:
    """Serialize a snapshot document to its canonical bytes."""
    return json.dumps(document, sort_keys=True,
                      separators=(",", ":")).encode("utf-8") + b"\n"


def state_from_snapshot(document: Optional[Mapping[str, object]]
                        ) -> Tuple[RestoredState, int]:
    """Parse a snapshot document; returns the state and its journal seq."""
    state = RestoredState()
    if document is None:
        return state, 0
    version = int(document.get("version", 0))
    if version != SNAPSHOT_VERSION:
        raise StoreError(
            f"unsupported snapshot version {version} (this build reads "
            f"version {SNAPSHOT_VERSION}); refusing to misparse verifier "
            f"state")
    for row in document.get("enrollments", ()):
        enrollment = Enrollment.from_row(row)
        state.enrollments[enrollment.device_id] = enrollment
    health_row = document.get("health")
    if health_row is not None:
        from repro.fleet.sinks import FleetHealth
        state.health = FleetHealth.from_row(health_row)
    state.last_collection_times = {
        str(device_id): float(value) for device_id, value
        in dict(document.get("last_collection_times", {})).items()}
    state.rounds_completed = int(document.get("rounds_completed", 0))
    return state, int(document.get("journal_seq", 0))


def apply_report_row(row: Mapping[str, object], state: RestoredState,
                     advance: bool = True) -> None:
    """Replay one journaled report row into a restored state.

    Mirrors exactly what ``FleetVerifier._commit`` did when the report
    was first accepted: fold it into the health aggregate and, when it
    carried measurements, advance the device's last-seen timestamp and
    last collection time.

    ``advance=False`` skips the last-seen advance; backends that keep
    enrollments as an unsequenced live table (SQLite, memory) pass it
    for reports older than the device's newest enrollment write, so a
    deliberate re-enrollment reset is never resurrected by replay.
    """
    report = VerificationReport.from_row(row)
    state.health.record(report)
    if report.measurement_count:
        state.last_collection_times[report.device_id] = \
            report.collection_time
        newest = report.newest_timestamp
        enrollment = state.enrollments.get(report.device_id)
        if advance and newest is not None and enrollment is not None:
            state.enrollments[report.device_id] = \
                enrollment.advanced(newest)
    state.replayed_reports += 1


def _drop_reset_collection_times(state: RestoredState,
                                 enrollment_seq: Mapping[str, int],
                                 last_report_seq: Mapping[str, int]) -> None:
    """Clear collection times voided by a re-enrollment reset.

    For backends whose enrollments live in an unsequenced table (SQLite,
    memory): a device whose newest enrollment write carries no
    ``last_seen`` and postdates every replayed report was deliberately
    reset — its last collection time belongs to the decommissioned unit
    and must not survive the restore (the live verifier popped it too).
    ``last_report_seq`` must only count reports that carried
    measurements, mirroring which reports actually set a collection
    time in :func:`apply_report_row`.
    """
    for device_id, seq in enrollment_seq.items():
        enrollment = state.enrollments.get(device_id)
        if enrollment is not None and enrollment.last_seen is None \
                and seq >= last_report_seq.get(device_id, 0):
            state.last_collection_times.pop(device_id, None)


class StateStore(abc.ABC):
    """Durable backing for a verifier's per-device and aggregate state."""

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def save_enrollment(self, enrollment: Enrollment) -> None:
        """Upsert one enrollment record (key, digests, last-seen)."""

    @abc.abstractmethod
    def append_report(self, report: VerificationReport) -> None:
        """Journal one finished verification report."""

    @abc.abstractmethod
    def checkpoint(self, health: Any,
                   last_collection_times: Mapping[str, float],
                   rounds_completed: int = 0) -> None:
        """Fold all state accepted so far into one durable snapshot."""

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def has_enrollment(self, device_id: str) -> bool:
        """True when the backing medium holds an enrollment for the device.

        Consulted by duplicate-enrollment guards: a freshly constructed
        verifier attached to a non-empty durable store must not let a
        careless re-provision silently overwrite persisted enrollments
        (and with them the rollback-detecting ``last_seen`` state).
        """

    @abc.abstractmethod
    def restore_state(self) -> RestoredState:
        """Snapshot plus journal tail, replayed into a resumable state."""

    @abc.abstractmethod
    def device_history(self, device_id: str,
                       limit: Optional[int] = None) -> List[Row]:
        """Retained report rows for one device, oldest first.

        ``limit`` keeps only the newest ``limit`` rows.  How much
        history is retained is backend-defined: :class:`SqliteStore`
        keeps everything (indexed), :class:`MemoryStore` keeps a
        bounded in-RAM window (``max_reports``, 10,000 by default),
        :class:`JsonlStore` keeps only the journal tail since the last
        checkpoint.
        """

    @abc.abstractmethod
    def state_rows(self) -> Optional[Row]:
        """The last checkpoint's snapshot document (``None`` before one)."""

    def state_bytes(self) -> bytes:
        """Canonical bytes of the last checkpoint (empty before one)."""
        document = self.state_rows()
        return b"" if document is None else encode_snapshot(document)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Push buffered writes to the backing medium (default: no-op)."""

    def close(self) -> None:
        """Flush and release any resources (default: nothing to do)."""

    def __enter__(self) -> "StateStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
