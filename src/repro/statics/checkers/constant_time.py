"""Rule ``constant-time``: secret material never meets ``==``.

The paper's verifier recomputes a MAC over the prover's response and
compares; an early-exit comparison leaks how many prefix bytes matched
(the classic HMAC timing oracle).  The repo funnels every such
comparison through :func:`repro.crypto.constant_time.constant_time_compare`
(or the backend's ``compare_digests``); this rule flags ``==`` / ``!=``
/ ``in`` / ``not in`` on values whose names say they hold MACs,
digests, tags, keys or other secret material anywhere else.

Heuristics keeping the noise down:

* comparing against a ``str`` / number constant is benign — secret
  material is bytes, so those comparisons are over names and labels;
* identifiers whose last word is a label word (``mac_name``,
  ``digest_size``) are benign;
* a bare ``key`` variable is a dict key, not key material — only
  compound names (``device_key``) and attribute access
  (``enrollment.key``) count.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.statics.engine import (
    Checker, FileContext, Finding, split_name, terminal_name,
)

SECRET_PARTS = {
    "mac", "macs", "hmac", "digest", "digests", "secret", "secrets",
    "tag", "tags", "nonce", "nonces", "token", "tokens", "checksum",
}
BENIGN_LAST_PARTS = {
    "name", "names", "label", "labels", "algo", "algorithm",
    "algorithms", "id", "ids", "kind", "path", "type", "index",
    "count", "len", "length", "size", "mode", "format", "row", "rows",
    # Tables/collections keyed BY algorithm name, and structural words:
    # _HMAC_HASHES, _SMARTPLUS_MAC_KB, SECRET_PARTS are lookup tables,
    # not material.
    "hashes", "kb", "parts", "table", "tables", "registry",
}
_FLAGGED_OPS = (ast.Eq, ast.NotEq, ast.In, ast.NotIn)
#: The one module allowed to implement the comparison itself.
_EXEMPT_SUFFIXES = ("repro/crypto/constant_time.py",)


def _op_text(op: ast.cmpop) -> str:
    return {ast.Eq: "==", ast.NotEq: "!=", ast.In: "in",
            ast.NotIn: "not in"}[type(op)]


def _is_benign_constant(node: ast.AST) -> bool:
    return (isinstance(node, ast.Constant)
            and not isinstance(node.value, (bytes, bytearray)))


def _secret_name(node: ast.AST) -> Optional[str]:
    """The secret-looking identifier behind an operand, if any."""
    name = terminal_name(node)
    if name is None:
        return None
    parts = split_name(name)
    if not parts or parts[-1] in BENIGN_LAST_PARTS:
        return None
    if any(part in SECRET_PARTS for part in parts):
        return name
    # A bare "key" variable is a dict key; "enrollment.key" is key
    # material.  Plural "keys" is a collection of dict keys unless the
    # name is compound (session_keys).
    if "key" in parts and (len(parts) > 1
                           or isinstance(node, (ast.Attribute,
                                                ast.Subscript))):
        return name
    if "keys" in parts and len(parts) > 1:
        return name
    return None


class ConstantTimeChecker(Checker):
    rule = "constant-time"
    description = ("flags ==/!=/in on MAC/digest/key-named values outside "
                   "repro.crypto.constant_time")
    invariant = ("secret material (MACs, digests, keys) is compared "
                 "constant-time so the verifier leaks no prefix-match "
                 "timing — the paper's core threat model")
    applies_to_tests = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.matches(*_EXEMPT_SUFFIXES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            if any(_is_benign_constant(operand) for operand in operands):
                continue
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, _FLAGGED_OPS):
                    continue
                name = _secret_name(left) or _secret_name(right)
                if name is None:
                    continue
                yield ctx.finding(
                    self.rule, node,
                    f"{name!r} compared with {_op_text(op)!r}; secret "
                    f"material must go through the crypto backend's "
                    f"compare_digests / constant_time_compare")
                break  # one finding per Compare node is enough
