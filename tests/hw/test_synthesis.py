"""Tests for the Section 4.1 synthesis (register/LUT) cost model."""

import pytest

from repro.hw.synthesis import SynthesisModel


@pytest.fixture
def model() -> SynthesisModel:
    return SynthesisModel()


def test_unmodified_core_matches_paper(model):
    report = model.synthesize("unmodified")
    assert report.registers == 579
    assert report.luts == 1731
    assert report.register_overhead == 0.0
    assert report.lut_overhead == 0.0


def test_erasmus_totals_match_paper(model):
    report = model.synthesize("erasmus")
    assert report.registers == 655
    assert report.luts == 1969


def test_overheads_match_paper_percentages(model):
    report = model.synthesize("erasmus")
    assert report.register_overhead == pytest.approx(0.13, abs=0.01)
    assert report.lut_overhead == pytest.approx(0.14, abs=0.01)


def test_erasmus_equals_on_demand(model):
    erasmus = model.synthesize("erasmus")
    on_demand = model.synthesize("on-demand")
    assert erasmus.registers == on_demand.registers
    assert erasmus.luts == on_demand.luts


def test_feature_costs_sum_to_delta(model):
    total_registers = 0
    total_luts = 0
    for feature in model.features("erasmus"):
        registers, luts = model.feature_cost(feature)
        total_registers += registers
        total_luts += luts
    assert total_registers == 655 - 579
    assert total_luts == 1969 - 1731


def test_unknown_variant_and_feature_rejected(model):
    with pytest.raises(ValueError):
        model.synthesize("tpm")
    with pytest.raises(ValueError):
        model.feature_cost("quantum_rng")


def test_comparison_covers_all_variants(model):
    comparison = model.comparison()
    assert set(comparison) == {"unmodified", "on-demand", "erasmus"}
