"""Protocol endpoints attached to the simulated network."""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet


class NetworkNode:
    """A named endpoint that can send and receive packets.

    Concrete behaviour is supplied by a receive handler, so the same
    class serves verifiers, ERASMUS provers and swarm relay devices.
    """

    def __init__(self, name: str,
                 on_receive: Optional[Callable[["NetworkNode", Packet, float],
                                               None]] = None) -> None:
        self.name = name
        self._on_receive = on_receive
        self.network = None  # set by Network.add_node
        self.sent_packets = 0
        self.received_packets = 0
        self.sent_bytes = 0
        self.received_bytes = 0

    def set_receive_handler(self, handler: Callable[["NetworkNode", Packet,
                                                     float], None]) -> None:
        """Install the callback invoked on packet delivery."""
        self._on_receive = handler

    def send(self, destination: str, payload: bytes,
             kind: str = "data") -> Optional[Packet]:
        """Send a packet through the attached network.

        Returns the packet, or ``None`` when the node is not attached or
        no route exists at the moment (mobile swarm partitions).
        """
        if self.network is None:
            return None
        packet = Packet(source=self.name, destination=destination,
                        payload=payload, kind=kind)
        delivered = self.network.transmit(packet)
        if delivered:
            self.sent_packets += 1
            self.sent_bytes += packet.size_bytes
            return packet
        return None

    def deliver(self, packet: Packet, time: float) -> None:
        """Called by the network when a packet arrives at this node."""
        self.received_packets += 1
        self.received_bytes += packet.size_bytes
        if self._on_receive is not None:
            self._on_receive(self, packet, time)
