"""Tests for the async-first collection pipeline and transport seam."""

import asyncio
import json

import pytest

from repro.core import DeviceStatus
from repro.fleet import (
    AsyncTransport,
    Fleet,
    InProcessTransport,
    SimulatedNetworkTransport,
    SyncTransportAdapter,
    as_async_transport,
)
from repro.sim import SimulationEngine
from tests.fleet.helpers import report_key
from tests.fleet.helpers import small_profile as _small_profile

FIRMWARE = b"async-test-firmware!"
MALWARE = b"async-test-implant!!"


def small_profile():
    return _small_profile(FIRMWARE)


def provision_fleet(count=12, **kwargs) -> Fleet:
    fleet = Fleet.provision(small_profile(), count, master_secret=b"master",
                            **kwargs)
    fleet.run_until(60.0)
    return fleet


# ----------------------------------------------------------------------
# Transport adaptation
# ----------------------------------------------------------------------

def test_sync_adapter_wraps_in_process_transport():
    fleet = provision_fleet(3)
    adapted = as_async_transport(fleet.transport)
    assert isinstance(adapted, SyncTransportAdapter)
    assert adapted.name == fleet.transport.name
    assert adapted.engine is fleet.engine
    assert adapted.concurrent_collections
    request = fleet.verifier.create_collect_request().encode()
    responses = asyncio.run(adapted.exchange_many(
        {device_id: request for device_id in fleet.device_ids()}))
    assert all(payload is not None for payload in responses.values())


def test_as_async_transport_passes_async_through():
    class _Null(AsyncTransport):
        def register(self, device):
            pass

        async def exchange_many(self, requests):
            return {device_id: None for device_id in requests}

    transport = _Null()
    assert as_async_transport(transport) is transport


def test_as_async_transport_prefers_native_async():
    engine = SimulationEngine()
    transport = SimulatedNetworkTransport(engine)
    adapted = as_async_transport(transport)
    # Bound to exchange_many_async, not the blocking sync drive.
    assert type(adapted).__name__ == "_NativeAsyncAdapter"
    assert adapted.engine is engine
    assert adapted.stale_responses_rejected == 0


def test_async_single_exchange_helper():
    fleet = provision_fleet(1)
    adapted = as_async_transport(fleet.transport)
    request = fleet.verifier.create_collect_request().encode()
    payload = asyncio.run(adapted.exchange("dev-0000", request))
    assert payload is not None


# ----------------------------------------------------------------------
# Pipeline behaviour and equivalence
# ----------------------------------------------------------------------

def test_pipeline_matches_sequential_reference_exactly():
    reference = provision_fleet(20).collect_all(pipeline=False)
    pipelined = provision_fleet(20).collect_all()
    assert [report_key(r) for r in reference] == \
        [report_key(r) for r in pipelined]


def test_fast_path_reports_equal_reference_reports():
    fleet = provision_fleet(10)
    fleet.device("dev-0003").load_application(MALWARE)
    fleet.run_until(80.0)
    verifier = fleet.verifier
    request = verifier.create_collect_request().encode()
    responses = fleet.transport.exchange_many(
        {device_id: request for device_id in fleet.device_ids()})
    now = fleet.now
    for device_id in fleet.device_ids():
        slow = verifier._verify_payload(device_id, responses[device_id], now)
        fast = verifier._verify_payload_fast(device_id, responses[device_id],
                                             now)
        assert report_key(slow) == report_key(fast)
        assert slow.verdicts == fast.verdicts


def test_fast_path_judges_garbage_and_silence_like_reference():
    fleet = provision_fleet(2)
    verifier = fleet.verifier
    for payload in (None, b"\xff\xff\xff"):
        slow = verifier._verify_payload("dev-0000", payload, 60.0)
        fast = verifier._verify_payload_fast("dev-0000", payload, 60.0)
        assert report_key(slow) == report_key(fast)


def test_device_judge_falls_back_for_custom_registered_macs():
    """A MAC only the registry knows must not break the fast path."""
    import hashlib

    from repro.arch.base import encode_timestamp
    from repro.core import ErasmusConfig, Measurement
    from repro.core.verification import Enrollment, VerificationCore
    from repro.crypto.mac import MacAlgorithm, register_mac

    def trunc_mac(key: bytes, data: bytes) -> bytes:
        return hashlib.blake2s(data, key=key, digest_size=8).digest()

    register_mac(MacAlgorithm("test-trunc-blake8", 64, 8, trunc_mac,
                              extra_blocks=1))
    core = VerificationCore(ErasmusConfig(mac_name="test-trunc-blake8"))
    key, digest = b"judge-key", b"\x07" * 32
    measurement = Measurement(
        5.0, digest, trunc_mac(key, encode_timestamp(5.0) + digest))
    enrollment = Enrollment.create("custom", key, [digest])
    reference = core.verify_measurements(enrollment, [measurement], 6.0)
    fast = core.device_judge(key).verify_measurements(
        enrollment, [measurement], 6.0)
    assert reference.status is DeviceStatus.HEALTHY
    assert fast.status is DeviceStatus.HEALTHY
    assert reference.verdicts == fast.verdicts


def test_collect_all_async_is_awaitable():
    fleet = provision_fleet(8)

    async def scenario():
        return await fleet.collect_all_async()

    reports = asyncio.run(scenario())
    assert len(reports) == 8
    assert all(report.status is DeviceStatus.HEALTHY for report in reports)
    assert reports.stats.requests_sent == 8
    assert reports.stats.responses_received == 8
    assert reports.stats.responses_lost == 0


def test_collect_all_refuses_to_block_running_loop():
    fleet = provision_fleet(2)

    async def scenario():
        fleet.collect_all()

    with pytest.raises(RuntimeError, match="collect_all_async"):
        asyncio.run(scenario())


def test_pipeline_commits_in_device_order_across_shards():
    fleet = provision_fleet(20)
    reports = fleet.collect_all(batch_size=3, max_inflight_shards=2)
    assert [report.device_id for report in reports] == fleet.device_ids()
    assert reports.stats.shards == 7


def test_max_inflight_shards_validation():
    fleet = provision_fleet(2)
    with pytest.raises(ValueError):
        asyncio.run(fleet.verifier.collect_all_async(
            fleet.transport, max_inflight_shards=0))


# ----------------------------------------------------------------------
# Round stats
# ----------------------------------------------------------------------

def test_round_stats_returned_and_recorded_in_health():
    fleet = provision_fleet(9)
    reports = fleet.collect_all(batch_size=4)
    stats = reports.stats
    assert stats.requests_sent == 9
    assert stats.responses_received == 9
    assert stats.responses_lost == 0
    assert stats.stale_responses_rejected == 0
    assert stats.shards == 3
    assert stats.wall_seconds > 0
    assert stats.devices_per_second > 0
    assert fleet.health.round_stats == [stats]
    fleet.run_until(120.0)
    fleet.collect_all()
    assert len(fleet.health.round_stats) == 2
    assert "request(s)" in stats.summary()


def test_round_stats_not_persisted_in_health_row():
    fleet = provision_fleet(3)
    fleet.collect_all()
    row = fleet.health.to_row()
    assert "round_stats" not in row
    json.dumps(row)  # the row stays JSON-serializable


def test_round_stats_count_lost_responses():
    fleet = Fleet.provision(
        small_profile(), 6, master_secret=b"master",
        transport="simulated-network",
        transport_options={"loss_probability": 1.0, "round_timeout": 2.0})
    fleet.run_until(60.0)
    reports = fleet.collect_all()
    assert reports.stats.requests_sent == 6
    assert reports.stats.responses_received == 0
    assert reports.stats.responses_lost == 6


def test_sequential_reference_path_also_reports_stats():
    fleet = provision_fleet(5)
    reports = fleet.collect_all(pipeline=False, batch_size=2)
    assert reports.stats.requests_sent == 5
    assert reports.stats.shards == 3
    assert fleet.health.round_stats == [reports.stats]


# ----------------------------------------------------------------------
# Overlapping rounds on the simulated network
# ----------------------------------------------------------------------

def test_overlapping_async_rounds_share_one_network():
    engine = SimulationEngine()
    transport = SimulatedNetworkTransport(engine, latency=0.05)
    profile = small_profile()
    devices = []
    for index in range(6):
        device = profile.provision(f"n-{index}", master_secret=b"master")
        device.prover.attach(engine)
        transport.register(device)
        devices.append(device)
    engine.run(until=60.0)
    from repro.core import CollectRequest
    request = CollectRequest(k=6).encode()

    started = engine.now

    async def scenario():
        first = transport.exchange_many_async(
            {f"n-{i}": request for i in range(3)})
        second = transport.exchange_many_async(
            {f"n-{i}": request for i in range(3, 6)})
        return await asyncio.gather(first, second)

    first, second = asyncio.run(scenario())
    assert set(first) == {"n-0", "n-1", "n-2"}
    assert set(second) == {"n-3", "n-4", "n-5"}
    assert all(payload is not None for payload in first.values())
    assert all(payload is not None for payload in second.values())
    # The two rounds overlapped in virtual time: the whole exchange took
    # barely more than one round trip, not two sequential ones.
    assert engine.now - started < 2 * (2 * 0.05)
    assert transport.stale_responses_rejected == 0


def test_stale_response_rejected_under_overlapping_async_rounds():
    engine = SimulationEngine()
    # 1 s one-way latency, 0.5 s timeout: the impatient round expires
    # while its response is still in the air.
    transport = SimulatedNetworkTransport(engine, latency=1.0,
                                          round_timeout=0.5)
    profile = small_profile()
    device = profile.provision("t-0", master_secret=b"master")
    device.prover.attach(engine)
    transport.register(device)
    engine.run(until=30.0)
    from repro.core import CollectRequest, decode_response
    request = CollectRequest(k=6).encode()

    async def impatient():
        return await transport.exchange_many_async({"t-0": request})

    first = asyncio.run(impatient())
    assert first == {"t-0": None}  # timed out, response still in flight

    # More history accrues, then a patient overlapped round runs: the
    # stale round-1 response is stepped through, rejected and counted,
    # and the fresh response (with the newer history) is returned.
    engine.run(until=60.0)
    transport.round_timeout = 30.0
    second = asyncio.run(impatient())
    assert second["t-0"] is not None
    assert transport.stale_responses_rejected == 1
    response = decode_response(second["t-0"])
    assert len(response.measurements) == 6  # history as of t>=60, not t=30


def test_concurrent_drain_cannot_smuggle_in_a_timed_out_response():
    """A response delivered past the round's deadline by *another*
    driver (an engine drain running concurrently) must be rejected as
    stale, exactly as the synchronous exchange would have done."""
    engine = SimulationEngine()
    transport = SimulatedNetworkTransport(engine, latency=1.0,
                                          round_timeout=0.5)
    profile = small_profile()
    device = profile.provision("t-0", master_secret=b"master")
    device.prover.attach(engine)
    transport.register(device)
    engine.run(until=30.0)
    from repro.core import CollectRequest
    request = CollectRequest(k=6).encode()

    async def scenario():
        drain = asyncio.ensure_future(engine.run_async(until=40.0,
                                                       yield_every=1))
        responses = await transport.exchange_many_async({"t-0": request})
        await drain
        return responses

    responses = asyncio.run(scenario())
    # The response was delivered at ~t=32, after the t=30.5 deadline —
    # the drain stepped it, but the round must not credit it.
    assert responses == {"t-0": None}
    assert transport.stale_responses_rejected == 1


def test_collection_overlaps_engine_drain():
    """A collection round can run while run_async drains the schedule."""
    fleet = provision_fleet(6, transport="simulated-network")

    async def scenario():
        drain = asyncio.ensure_future(fleet.engine.run_async(until=62.0))
        reports = await fleet.collect_all_async(batch_size=2)
        await drain
        return reports

    reports = asyncio.run(scenario())
    assert len(reports) == 6
    assert {report.status for report in reports} == {DeviceStatus.HEALTHY}
    # The drain reached its horizon; the collection added at most its
    # own round trips on top, never a timeout's worth of virtual time.
    assert 62.0 <= fleet.now < 63.0


def test_external_cancellation_does_not_orphan_shard_tasks():
    """A wait_for timeout mid-round must cancel the in-flight shard
    tasks (including the one being awaited) and deregister their
    transport rounds, instead of leaving them driving the engine."""
    fleet = provision_fleet(9, transport="simulated-network")

    async def scenario():
        with pytest.raises(asyncio.TimeoutError):
            await asyncio.wait_for(fleet.collect_all_async(batch_size=3),
                                   timeout=0)
        others = [task for task in asyncio.all_tasks()
                  if task is not asyncio.current_task()]
        assert others == []  # no orphaned shard task keeps running
        assert fleet.transport._pending == {}  # rounds deregistered

    asyncio.run(scenario())
