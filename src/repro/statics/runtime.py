"""Runtime lock-order witness — the dynamic half of ``repro.statics``.

The static ``lock-discipline`` rule catches *lexical* violations; this
module catches the ones only an execution can show: two threads taking
the same pair of locks in opposite orders (a latent deadlock), and
blocking calls made while a lock is held.

Production code creates its locks through :func:`named_lock`.  With no
witness active that returns a plain :class:`threading.Lock` /
``RLock`` — zero overhead beyond one module-global check at *creation*
time, never per acquire.  Inside a :func:`witness` context (the fleet
and store test suites activate one per test), new locks come back
wrapped in :class:`WitnessedLock`: every acquisition is recorded
per-thread, lock-order edges accumulate in a global graph keyed by
lock *name* (lock-rank discipline — all instances of one name share a
rank), and an acquisition that closes a cycle is recorded as a
:class:`LockViolation`.  While active, ``time.sleep`` is patched to
flag held-lock sleeps.

Nothing here imports the rest of ``repro`` — fleet, store and obs all
import this module for :func:`named_lock`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = [
    "LockViolation",
    "LockWitness",
    "WitnessedLock",
    "active_witness",
    "named_lock",
    "witness",
]

_ACTIVE: Optional["LockWitness"] = None


@dataclass(frozen=True)
class LockViolation:
    """One observed breach of the lock discipline."""

    kind: str            # "order-inversion" | "blocking-call"
    thread: str
    acquiring: str       # lock name being taken (or blocking call name)
    held: Tuple[str, ...]
    detail: str

    def __str__(self) -> str:
        return (f"[{self.kind}] thread {self.thread!r} "
                f"{self.detail} (held: {', '.join(self.held) or 'none'})")


class WitnessedLock:
    """A named lock that reports acquisitions to its witness.

    Supports the full ``threading.Lock``/``RLock`` surface the repo
    uses (``acquire``/``release``/context manager/``locked``);
    anything else is delegated to the wrapped lock.
    """

    def __init__(self, witness: "LockWitness", name: str, inner) -> None:
        self.witness = witness
        self.name = name
        self.inner = inner

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self.inner.acquire(blocking, timeout)
        if acquired:
            self.witness._note_acquire(self)
        return acquired

    def release(self) -> None:
        self.witness._note_release(self)
        self.inner.release()

    def __enter__(self) -> "WitnessedLock":
        self.acquire()
        return self

    def __exit__(self, *_exc) -> None:
        self.release()

    def locked(self) -> bool:
        return self.inner.locked()

    def __getattr__(self, item):
        return getattr(self.inner, item)

    def __repr__(self) -> str:
        return f"WitnessedLock({self.name!r})"


class LockWitness:
    """Accumulates lock-order edges and violations across threads."""

    def __init__(self) -> None:
        self.violations: List[LockViolation] = []
        #: name -> names acquired while it was held (order edges).
        self._edges: Dict[str, Set[str]] = {}
        self._edge_examples: Dict[Tuple[str, str], str] = {}
        self._held = threading.local()
        self._graph_lock = threading.Lock()
        self._locks_created: List[str] = []

    # ------------------------------------------------------------------
    # Lock construction
    # ------------------------------------------------------------------
    def lock(self, name: str, kind: str = "lock") -> WitnessedLock:
        """A fresh witnessed lock registered under ``name``."""
        inner = threading.RLock() if kind == "rlock" else threading.Lock()
        self._locks_created.append(name)
        return WitnessedLock(self, name, inner)

    # ------------------------------------------------------------------
    # Acquisition tracking
    # ------------------------------------------------------------------
    def _stack(self) -> List[WitnessedLock]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def held_names(self) -> Tuple[str, ...]:
        """Names of distinct locks the calling thread holds right now."""
        names: List[str] = []
        for lock in self._stack():
            if lock.name not in names:
                names.append(lock.name)
        return tuple(names)

    def _note_acquire(self, lock: WitnessedLock) -> None:
        stack = self._stack()
        held = [entry for entry in stack if entry is not lock]
        reentrant = any(entry is lock for entry in stack)
        stack.append(lock)
        if reentrant or not held:
            return
        thread = threading.current_thread().name
        with self._graph_lock:
            for holder in held:
                if holder.name == lock.name:
                    self.violations.append(LockViolation(
                        kind="order-inversion", thread=thread,
                        acquiring=lock.name,
                        held=tuple(entry.name for entry in held),
                        detail=f"acquired two distinct locks of rank "
                               f"{lock.name!r} (same-rank nesting)"))
                    continue
                edge = (holder.name, lock.name)
                path = self._path(lock.name, holder.name)
                if path is not None:
                    self.violations.append(LockViolation(
                        kind="order-inversion", thread=thread,
                        acquiring=lock.name,
                        held=tuple(entry.name for entry in held),
                        detail=f"acquired {lock.name!r} while holding "
                               f"{holder.name!r}, but the reverse order "
                               f"{' -> '.join(path)} was taken "
                               f"{self._edge_examples.get((path[0], path[1]), 'earlier')}"))
                self._edges.setdefault(holder.name, set()).add(lock.name)
                self._edge_examples.setdefault(
                    edge, f"by thread {thread!r}")

    def _note_release(self, lock: WitnessedLock) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                return

    def _path(self, source: str, target: str) -> Optional[List[str]]:
        """A lock-order path source -> ... -> target, if one exists."""
        seen = {source}
        frontier: List[List[str]] = [[source]]
        while frontier:
            path = frontier.pop()
            for successor in self._edges.get(path[-1], ()):
                if successor == target:
                    return path + [successor]
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(path + [successor])
        return None

    # ------------------------------------------------------------------
    # Blocking-call detection
    # ------------------------------------------------------------------
    def note_blocking(self, description: str) -> None:
        """Record a blocking operation if the caller holds any lock."""
        held = self.held_names()
        if held:
            self.violations.append(LockViolation(
                kind="blocking-call",
                thread=threading.current_thread().name,
                acquiring=description, held=held,
                detail=f"blocking call {description} while holding "
                       f"{', '.join(held)}"))


def active_witness() -> Optional[LockWitness]:
    """The currently installed witness, if any (test mode only)."""
    return _ACTIVE


def named_lock(name: str, kind: str = "lock"):
    """A lock for production code: plain normally, witnessed in tests.

    ``kind`` is ``"lock"`` or ``"rlock"``.  The name is the lock's
    *rank* for order checking — all locks created under one name are
    expected to be leaves relative to each other (never nested).
    """
    if _ACTIVE is not None:
        return _ACTIVE.lock(name, kind)
    return threading.RLock() if kind == "rlock" else threading.Lock()


@contextmanager
def witness(patch_sleep: bool = True) -> Iterator[LockWitness]:
    """Install a fresh witness; locks created inside are watched.

    While active, ``time.sleep`` reports held-lock sleeps to the
    witness before sleeping.  Witnesses do not nest — activating a
    second one raises, because two graphs over one process's locks
    would each see half the story.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a lock witness is already active")
    current = LockWitness()
    _ACTIVE = current
    original_sleep = time.sleep
    if patch_sleep:
        def _watched_sleep(seconds: float) -> None:
            current.note_blocking(f"time.sleep({seconds!r})")
            original_sleep(seconds)

        time.sleep = _watched_sleep
    try:
        yield current
    finally:
        if patch_sleep:
            time.sleep = original_sleep
        _ACTIVE = None
