"""The runtime lock-order witness: the dynamic half of the rule set."""

import threading
import time

import pytest

from repro.statics.runtime import active_witness, named_lock, witness


def test_named_lock_is_plain_when_no_witness_is_active():
    assert active_witness() is None
    lock = named_lock("test.plain")
    rlock = named_lock("test.plain", kind="rlock")
    assert type(lock) in (type(threading.Lock()),)
    with lock:
        pass
    with rlock:
        with rlock:  # reentrant
            pass


def test_witness_observes_consistent_order_without_violations():
    with witness() as active:
        a = named_lock("test.a")
        b = named_lock("test.b")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert active.violations == []


def test_witness_detects_lock_order_inversion_across_threads():
    with witness() as active:
        a = named_lock("test.a")
        b = named_lock("test.b")
        with a:
            with b:
                pass

        def inverted():
            with b:
                with a:
                    pass

        thread = threading.Thread(target=inverted)
        thread.start()
        thread.join()
        kinds = [violation.kind for violation in active.violations]
        assert kinds == ["order-inversion"]
        assert "test.a" in active.violations[0].detail


def test_witness_detects_same_rank_nesting():
    with witness() as active:
        first = named_lock("fleet.worker_handle")
        second = named_lock("fleet.worker_handle")
        with first:
            with second:
                pass
        kinds = [violation.kind for violation in active.violations]
        assert kinds == ["order-inversion"]
        assert "same-rank" in active.violations[0].detail


def test_reentrant_rlock_acquisition_is_not_a_violation():
    with witness() as active:
        shared = named_lock("fleet.store", kind="rlock")
        with shared:
            with shared:
                pass
        assert active.violations == []


def test_witness_flags_sleep_while_holding_a_lock():
    with witness() as active:
        lock = named_lock("test.convoy")
        with lock:
            # The violation is the test's subject:
            # statics: ok(lock-discipline)
            time.sleep(0.001)
        assert [v.kind for v in active.violations] == ["blocking-call"]
        assert "test.convoy" in active.violations[0].held


def test_sleep_without_a_held_lock_is_fine():
    with witness() as active:
        lock = named_lock("test.idle")
        with lock:
            pass
        time.sleep(0.001)
        assert active.violations == []


def test_sleep_patch_is_removed_on_exit():
    original = time.sleep
    with witness():
        assert time.sleep is not original
    assert time.sleep is original


def test_witnesses_do_not_nest():
    with witness():
        with pytest.raises(RuntimeError):
            with witness():
                pass


def test_locked_store_and_worker_locks_are_witnessed_in_fleet_tests():
    """End to end: the product's named locks register with the witness."""
    from repro.fleet.service import _LockedStore
    from repro.store import MemoryStore

    with witness() as active:
        shared = _LockedStore(MemoryStore())
        shared.has_enrollment("dev")
        assert "fleet.store" in active._locks_created
        assert active.violations == []
