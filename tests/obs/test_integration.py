"""End-to-end observability: one ``obs=`` lights up the whole stack.

The acceptance criteria of the obs subsystem live here:

* a live 1k-device *sharded* collection round is scraped over HTTP
  mid-round, and the exposition carries per-shard verify-latency
  histograms;
* a :class:`~repro.campaign.faults.PartitionInjector`-induced SLO
  violation fires as a streaming event *before* the round returns;
* span traces from two identically-seeded runs are byte-identical.
"""

import urllib.request

from repro.campaign.faults import PartitionInjector
from repro.fleet import Fleet, MemorySink
from repro.fleet.sinks import ReportSink
from repro.fleet.transport import InProcessTransport
from repro.obs import (
    NULL_OBSERVABILITY,
    CoverageRule,
    LostBudgetRule,
    Observability,
    ObservedStore,
)
from tests.fleet.helpers import small_profile

FIRMWARE = b"\x42" * 64


def provision(count, obs=None, shards=None, transport="in-process",
              transport_options=None):
    return Fleet.provision(small_profile(FIRMWARE), count,
                           master_secret=b"obs-tests", transport=transport,
                           transport_options=transport_options,
                           shards=shards, obs=obs)


class _ScrapeMidRound(ReportSink):
    """Scrape the metrics endpoint from inside the round's sink fanout."""

    def __init__(self, url, at_report):
        self.url = url
        self.at_report = at_report
        self.seen = 0
        self.body = None

    def emit(self, report):
        self.seen += 1
        if self.seen == self.at_report:
            with urllib.request.urlopen(self.url, timeout=10) as response:
                self.body = response.read().decode("utf-8")


def test_thousand_device_sharded_round_is_scrapeable_mid_round():
    obs = Observability(seed=5)
    fleet = provision(1000, obs=obs, shards=4)
    server = obs.serve()
    scraper = _ScrapeMidRound(server.metrics_url, at_report=250)
    fleet.verifier.add_sink(scraper)
    try:
        fleet.run_until(60.0)
        reports = fleet.collect_all(batch_size=125)
    finally:
        obs.close()
        fleet.close()
    assert len(reports) == 1000
    body = scraper.body
    assert body, "the mid-round scrape never happened"
    # The scrape is a genuine Prometheus exposition with per-shard
    # verify-latency histograms — every shard worker had verified its
    # slice by the time the fanout streamed report #250.
    assert "# TYPE repro_device_verify_seconds histogram" in body
    for shard in range(4):
        marker = f'repro_device_verify_seconds_count{{shard="{shard}"}} 250'
        assert marker in body
    assert "repro_reports_total" in body
    # After the round: fleet-wide totals landed.
    text = obs.render_metrics()
    assert "repro_rounds_total 1" in text
    assert "repro_requests_sent_total 1000" in text
    assert obs.reports_total.value("healthy") == 1000
    assert obs.devices_enrolled.value() == 1000
    # Store instrumentation rode along (journal + checkpoint).
    assert obs.store_ops.value("append_report") == 1000
    assert obs.store_ops.value("checkpoint") >= 1
    # The trace covers every layer of the round.
    kinds = {row["kind"] for row in obs.tracer.export_rows()}
    assert kinds == {"round", "shard", "device_verify"}


def test_partition_slo_violation_fires_before_the_round_returns():
    in_round = False
    fired_mid_round = []

    def on_violation(violation):
        fired_mid_round.append((in_round, violation))

    obs = Observability(
        slo_rules=[LostBudgetRule(2), CoverageRule(0.95,
                                                   expected_devices=60)],
        on_violation=[on_violation])

    def build(engine):
        return PartitionInjector(InProcessTransport(engine),
                                 [(0.0, 1e9)], fraction=0.5, seed=3)

    fleet = provision(60, obs=obs, transport=build)
    try:
        fleet.run_until(60.0)
        in_round = True
        reports = fleet.collect_all(batch_size=8)
        in_round = False
    finally:
        fleet.close()
    lost = sum(1 for r in reports if r.status.value == "no_data")
    assert lost > 3  # the injector really cut a chunk of the fleet
    assert fired_mid_round, "no SLO violation fired"
    for was_in_round, violation in fired_mid_round:
        assert was_in_round, "violation fired after the round returned"
        assert violation.streamed
        assert violation.reports_seen < 60  # strictly mid-round
    rules_fired = {v.rule for _f, v in fired_mid_round}
    assert rules_fired == {"lost_budget", "coverage"}
    assert obs.slo_violations_total.value("lost_budget") == 1
    assert obs.violations == [v for _f, v in fired_mid_round]


def test_span_traces_are_byte_identical_across_seeded_runs():
    def run():
        obs = Observability(seed=11)
        fleet = provision(40, obs=obs, shards=2,
                          transport="simulated-network",
                          transport_options={"loss_probability": 0.1,
                                             "seed": 7})
        try:
            fleet.run_until(60.0)
            fleet.collect_all(batch_size=10)
            fleet.run_until(120.0)
            fleet.collect_all(batch_size=10)
        finally:
            fleet.close()
        return obs

    one, two = run(), run()
    trace_one, trace_two = one.tracer.export_jsonl(), \
        two.tracer.export_jsonl()
    assert trace_one == trace_two
    assert trace_one  # not vacuously equal
    # Two rounds, two workers each, plus shard and device rows.
    paths = [row["path"] for row in one.tracer.export_rows()]
    assert "round:1/worker:0" in paths and "round:1/worker:1" in paths
    assert "round:2/worker:0" in paths
    assert any("/device:" in path for path in paths)
    # A different tracer seed renames every span but keeps the shape.
    reseeded = Observability(seed=12)
    assert reseeded.tracer.export_jsonl() != trace_one or not trace_one


def test_trace_writes_jsonl_file(tmp_path):
    obs = Observability(seed=1)
    fleet = provision(10, obs=obs)
    try:
        fleet.run_until(60.0)
        fleet.collect_all(batch_size=5)
    finally:
        fleet.close()
    path = tmp_path / "trace.jsonl"
    rows = obs.write_trace(str(path))
    assert rows == len(path.read_text().splitlines())
    assert rows >= 1 + 2 + 10  # round + shards + devices


def test_provision_without_obs_is_null_and_unchanged():
    fleet = provision(8)
    try:
        assert fleet.obs is NULL_OBSERVABILITY
        assert fleet.verifier.obs is NULL_OBSERVABILITY
        assert not isinstance(fleet.verifier.store, ObservedStore)
        fleet.run_until(60.0)
        reports = fleet.collect_all(batch_size=4)
    finally:
        fleet.close()
    assert len(reports) == 8
    assert NULL_OBSERVABILITY.render_metrics() == ""


def test_observed_and_null_rounds_produce_identical_reports():
    def run(obs):
        fleet = provision(20, obs=obs, transport="simulated-network",
                          transport_options={"loss_probability": 0.1,
                                             "seed": 9})
        sink = MemorySink()
        fleet.verifier.add_sink(sink)
        try:
            fleet.run_until(60.0)
            fleet.collect_all(batch_size=5)
        finally:
            fleet.close()
        return [(r.device_id, r.status.value, r.freshness)
                for r in sink.reports]

    assert run(None) == run(Observability(seed=2))


def test_network_packet_metrics_from_simulated_transport():
    obs = Observability()
    fleet = provision(30, obs=obs, transport="simulated-network",
                      transport_options={"loss_probability": 0.2,
                                         "seed": 13})
    try:
        fleet.run_until(60.0)
        reports = fleet.collect_all(batch_size=10)
    finally:
        fleet.close()
    lost = sum(1 for r in reports if r.status.value == "no_data")
    assert obs.packets_admitted_total.value() > 0
    assert obs.packets_settled_total.value("dropped") > 0
    assert lost > 0  # the dropped packets surfaced as NO_DATA reports
