"""Event objects used by the simulation engine."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class EventKind(enum.Enum):
    """Coarse classification of simulation events.

    The kinds mirror the actors in the paper: the prover's measurement
    timer, the verifier's collection requests, network packet delivery,
    adversary activity and generic application tasks.
    """

    MEASUREMENT = "measurement"
    COLLECTION = "collection"
    PACKET_DELIVERY = "packet_delivery"
    MALWARE_ARRIVAL = "malware_arrival"
    MALWARE_DEPARTURE = "malware_departure"
    TASK = "task"
    TIMER = "timer"
    GENERIC = "generic"


_sequence = itertools.count()


@dataclass(order=True)
class Event:
    """A single scheduled event.

    Events are ordered by ``(time, sequence)`` so that simultaneous
    events fire in scheduling order, which keeps traces deterministic.
    """

    time: float
    sequence: int = field(compare=True)
    kind: EventKind = field(compare=False, default=EventKind.GENERIC)
    callback: Optional[Callable[["Event"], None]] = field(
        compare=False, default=None)
    payload: Any = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)

    @classmethod
    def create(cls, time: float, callback: Callable[["Event"], None],
               kind: EventKind = EventKind.GENERIC,
               payload: Any = None) -> "Event":
        """Build an event with a fresh global sequence number."""
        return cls(time=time, sequence=next(_sequence), kind=kind,
                   callback=callback, payload=payload)

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine will skip it."""
        self.cancelled = True
