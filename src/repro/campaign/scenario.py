"""Declarative scenario cells and grids for adversarial campaigns.

A :class:`Scenario` is one fully specified cell: fleet size, protocol
(ERASMUS or the on-demand baseline, which conflates ``T_M`` with
``T_C``), adversary, mobility, transport and fault injections, plus
the seed that makes the whole cell reproducible.  A
:class:`ScenarioGrid` is a base cell plus axes to sweep; it expands to
a deterministic list of cells, each with its own derived seed, which
the :class:`~repro.campaign.runner.CampaignRunner` fans out.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Protocols a cell can run.  ``on-demand`` measures only when the
#: verifier asks: the effective measurement interval becomes ``T_C``.
PROTOCOLS = ("erasmus", "on-demand")

#: Adversaries a cell can deploy (see :mod:`repro.adversary.fleet`).
MALWARE_KINDS = ("none", "mobile", "persistent", "tampering",
                 "schedule-aware")

#: Mobility models a cell can exercise.
MOBILITY_KINDS = ("none", "waypoint", "partition-merge")

#: Transports a cell can collect over.
TRANSPORT_KINDS = ("in-process", "simulated-network", "swarm-relay")

#: Measurement schedules a cell's provers can follow.
SCHEDULE_KINDS = ("regular", "irregular")

Window = Tuple[float, float]


def _validate_windows(windows: Sequence[Window], label: str) -> Tuple[Window, ...]:
    normalized: List[Window] = []
    for window in windows:
        start, end = float(window[0]), float(window[1])
        if start < 0 or end <= start:
            raise ValueError(
                f"{label} window {window!r} must satisfy 0 <= start < end")
        normalized.append((start, end))
    return tuple(normalized)


@dataclass(frozen=True)
class Scenario:
    """One campaign cell, fully specified and reproducible from its seed."""

    name: str = "cell"
    devices: int = 100
    horizon: float = 3600.0
    measurement_interval: float = 60.0
    collection_interval: float = 600.0
    protocol: str = "erasmus"
    schedule: str = "regular"
    malware: str = "mobile"
    dwell: Optional[float] = 30.0
    mean_dwell: Optional[float] = None
    arrival_rate: float = 1.0 / 900.0
    victim_fraction: float = 0.25
    mobility: str = "none"
    mobility_speed: float = 1.0
    mobility_area: float = 200.0
    radio_range: float = 60.0
    partition_period: float = 600.0
    partition_groups: int = 2
    merged_fraction: float = 0.5
    transport: str = "in-process"
    loss_probability: float = 0.0
    verifier_downtime: Tuple[Window, ...] = ()
    store_crash_round: Optional[int] = None
    fault_partition_windows: Tuple[Window, ...] = ()
    fault_partition_fraction: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.devices <= 0:
            raise ValueError("a scenario needs at least one device")
        if self.horizon <= 0:
            raise ValueError("the horizon must be positive")
        if self.measurement_interval <= 0 or self.collection_interval <= 0:
            raise ValueError("intervals must be positive")
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}; "
                             f"known: {', '.join(PROTOCOLS)}")
        if self.schedule not in SCHEDULE_KINDS:
            raise ValueError(f"unknown schedule {self.schedule!r}; "
                             f"known: {', '.join(SCHEDULE_KINDS)}")
        if self.malware not in MALWARE_KINDS:
            raise ValueError(f"unknown malware kind {self.malware!r}; "
                             f"known: {', '.join(MALWARE_KINDS)}")
        if self.mobility not in MOBILITY_KINDS:
            raise ValueError(f"unknown mobility kind {self.mobility!r}; "
                             f"known: {', '.join(MOBILITY_KINDS)}")
        if self.transport not in TRANSPORT_KINDS:
            raise ValueError(f"unknown transport {self.transport!r}; "
                             f"known: {', '.join(TRANSPORT_KINDS)}")
        if self.malware in ("mobile", "schedule-aware") and \
                self.dwell is None and self.mean_dwell is None:
            raise ValueError(
                f"{self.malware} malware needs dwell= or mean_dwell=")
        if not 0.0 < self.victim_fraction <= 1.0:
            raise ValueError("victim_fraction must be in (0, 1]")
        if not 0.0 <= self.fault_partition_fraction <= 1.0:
            raise ValueError("fault_partition_fraction must be in [0, 1]")
        if self.store_crash_round is not None and self.store_crash_round < 1:
            raise ValueError("store_crash_round counts from 1")
        if self.mobility != "none" and self.transport != "swarm-relay":
            raise ValueError(
                f"mobility {self.mobility!r} needs the swarm-relay "
                f"transport; {self.transport!r} ignores topology")
        object.__setattr__(
            self, "verifier_downtime",
            _validate_windows(self.verifier_downtime, "verifier downtime"))
        object.__setattr__(
            self, "fault_partition_windows",
            _validate_windows(self.fault_partition_windows,
                              "fault partition"))

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def effective_measurement_interval(self) -> float:
        """``T_M`` the provers actually run: ``T_C`` for on-demand RA."""
        if self.protocol == "on-demand":
            return self.collection_interval
        return self.measurement_interval

    @property
    def measurements_per_collection(self) -> int:
        """``k = ceil(T_C / T_M)`` under the effective schedule."""
        return int(math.ceil(self.collection_interval /
                             self.effective_measurement_interval))

    def collection_times(self) -> List[float]:
        """Every planned collection instant (downtime not yet applied)."""
        times: List[float] = []
        time = self.collection_interval
        while time <= self.horizon + 1e-9:
            times.append(time)
            time += self.collection_interval
        return times

    def in_downtime(self, time: float) -> bool:
        """True when the verifier is down at ``time`` (round skipped)."""
        return any(start <= time < end
                   for start, end in self.verifier_downtime)

    def active_collection_times(self) -> List[float]:
        """Collection instants that survive the downtime windows."""
        return [time for time in self.collection_times()
                if not self.in_downtime(time)]

    def with_overrides(self, **overrides) -> "Scenario":
        """Copy of this scenario with fields replaced."""
        return replace(self, **overrides)

    def to_row(self) -> Dict[str, object]:
        """JSON-friendly description of this cell (fully deterministic)."""
        row = asdict(self)
        row["verifier_downtime"] = [list(w) for w in self.verifier_downtime]
        row["fault_partition_windows"] = [
            list(w) for w in self.fault_partition_windows]
        return row


@dataclass
class ScenarioGrid:
    """A base scenario plus axes to sweep.

    ``axes`` maps :class:`Scenario` field names to the values to sweep;
    cells are the cartesian product in the axes' declaration order
    (first axis slowest), mirroring
    :class:`~repro.analysis.sweep.ParameterSweep`.  Each cell's seed is
    derived from the base seed and its position, and its name from the
    axis values, so a grid always expands to the same cells in the
    same order.
    """

    base: Scenario = field(default_factory=Scenario)
    axes: Mapping[str, Sequence[object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for axis, values in self.axes.items():
            if not hasattr(self.base, axis):
                raise ValueError(f"unknown scenario field {axis!r}")
            if not values:
                raise ValueError(f"axis {axis!r} has no values")

    def cells(self) -> List[Scenario]:
        """Expand the grid into its scenario cells, deterministically."""
        combos: List[Dict[str, object]] = [{}]
        for axis, values in self.axes.items():
            combos = [dict(combo, **{axis: value})
                      for combo in combos for value in values]
        cells: List[Scenario] = []
        for index, combo in enumerate(combos):
            label = "/".join(f"{axis}={combo[axis]}" for axis in self.axes) \
                or self.base.name
            overrides = {"name": label, "seed": self.base.seed + index}
            overrides.update(combo)  # explicit axis values win
            cells.append(self.base.with_overrides(**overrides))
        return cells
