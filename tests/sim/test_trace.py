"""Tests for the trace recorder."""

from repro.sim import TraceRecorder


def test_record_and_filter_by_category():
    trace = TraceRecorder()
    trace.record(1.0, "measurement", device="a")
    trace.record(2.0, "collection", device="a")
    trace.record(3.0, "measurement", device="b")
    assert len(trace) == 3
    assert [event.time for event in trace.events("measurement")] == [1.0, 3.0]
    assert trace.categories() == {"measurement", "collection"}


def test_between_filters_by_time_window():
    trace = TraceRecorder()
    for time in (1.0, 5.0, 10.0, 15.0):
        trace.record(time, "tick")
    window = trace.between(4.0, 11.0)
    assert [event.time for event in window] == [5.0, 10.0]
    assert trace.between(4.0, 11.0, category="other") == []


def test_last_returns_most_recent_of_category():
    trace = TraceRecorder()
    assert trace.last("measurement") is None
    trace.record(1.0, "measurement", index=1)
    trace.record(2.0, "measurement", index=2)
    assert trace.last("measurement").details["index"] == 2


def test_details_are_copied_into_event():
    trace = TraceRecorder()
    event = trace.record(1.0, "infection", device="dev1", dwell=30.0)
    assert event.details == {"device": "dev1", "dwell": 30.0}
    assert list(trace)[0] is event
