"""Per-device description for swarm attestation simulations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.hw.devices import DeviceCostModel, MCUModel


@dataclass
class SwarmDevice:
    """One device in a swarm.

    ``compute_time`` is how long the device needs for one on-demand
    measurement (drives SEDA/LISA duration); ``collection_time`` is how
    long it needs to serve an ERASMUS collection (reading and relaying
    stored records — effectively negligible, Table 2).
    """

    device_id: str
    compute_time: float
    collection_time: float = 1.5e-5
    healthy: bool = True

    def attestation_service_time(self, on_demand: bool) -> float:
        """Time the device spends serving one swarm attestation."""
        return self.compute_time if on_demand else self.collection_time


def build_swarm(count: int, memory_bytes: int = 10 * 1024,
                mac_name: str = "keyed-blake2s",
                cost_model: DeviceCostModel | None = None,
                name_prefix: str = "dev") -> List[SwarmDevice]:
    """Build a homogeneous swarm of ``count`` devices.

    Compute times come from the device cost model (MSP430-class by
    default, matching the paper's low-end swarm setting).
    """
    if count <= 0:
        raise ValueError("a swarm needs at least one device")
    model = cost_model if cost_model is not None else MCUModel()
    compute_time = model.measurement_runtime(memory_bytes, mac_name)
    return [SwarmDevice(device_id=f"{name_prefix}{index}",
                        compute_time=compute_time)
            for index in range(count)]
