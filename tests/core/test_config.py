"""Tests for the ERASMUS configuration object."""

import pytest

from repro.core import ErasmusConfig, ScheduleKind


def test_defaults_are_valid():
    config = ErasmusConfig()
    assert config.measurement_interval > 0
    assert config.validate_no_overwrite()


def test_measurements_per_collection_is_ceiling():
    config = ErasmusConfig(measurement_interval=60.0,
                           collection_interval=600.0)
    assert config.measurements_per_collection == 10
    config = ErasmusConfig(measurement_interval=60.0,
                           collection_interval=601.0, buffer_slots=16)
    assert config.measurements_per_collection == 11


def test_buffer_capacity_rule():
    # The paper requires T_C <= n * T_M so nothing is overwritten.
    fits = ErasmusConfig(measurement_interval=10.0, collection_interval=60.0,
                         buffer_slots=8)
    assert fits.validate_no_overwrite()
    too_small = ErasmusConfig(measurement_interval=10.0,
                              collection_interval=600.0, buffer_slots=8)
    assert not too_small.validate_no_overwrite()


def test_irregular_defaults_derived_from_tm():
    config = ErasmusConfig(measurement_interval=60.0,
                           schedule=ScheduleKind.IRREGULAR)
    assert config.irregular_lower == pytest.approx(30.0)
    assert config.irregular_upper == pytest.approx(90.0)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ErasmusConfig(measurement_interval=0.0)
    with pytest.raises(ValueError):
        ErasmusConfig(collection_interval=-1.0)
    with pytest.raises(ValueError):
        ErasmusConfig(buffer_slots=0)
    with pytest.raises(ValueError):
        ErasmusConfig(lenient_window_factor=0.5)
    with pytest.raises(ValueError):
        ErasmusConfig(schedule=ScheduleKind.IRREGULAR, irregular_lower=50.0,
                      irregular_upper=10.0)


def test_crypto_backend_selection():
    assert ErasmusConfig().crypto_backend is None
    assert ErasmusConfig(crypto_backend="reference").crypto_backend == \
        "reference"
    with pytest.raises(ValueError):
        ErasmusConfig(crypto_backend="not-a-backend")
