"""HMAC-DRBG (NIST SP 800-90A) — the CSPRNG for irregular scheduling.

Paper Section 3.5: "One way to implement irregular intervals is to use
a Cryptographically Secure Pseudo Random Number Generator (CSPRNG)
initialized (seeded) with the secret key K."  The output is truncated /
mapped into ``[lower, upper)`` seconds to produce the next measurement
interval.

We implement the deterministic HMAC-DRBG construction so that prover
and analysis code can regenerate identical schedules from the same seed
(the verifier, knowing K, can reconstruct the expected measurement
times, while schedule-aware malware without K cannot).
"""

from __future__ import annotations

from repro.crypto.hmac import Hmac


class HmacDrbg:
    """Deterministic random bit generator per NIST SP 800-90A (HMAC-DRBG).

    Parameters
    ----------
    seed:
        Entropy input; in ERASMUS this is derived from the attestation
        key ``K`` (optionally mixed with a per-device nonce).
    personalization:
        Optional personalization string mixed into the initial state.
    hash_name:
        Underlying hash for the internal HMAC ("sha256" by default).
    """

    def __init__(self, seed: bytes, personalization: bytes = b"",
                 hash_name: str = "sha256") -> None:
        if not seed:
            raise ValueError("HMAC-DRBG requires a non-empty seed")
        self._hash_name = hash_name
        digest_size = Hmac(b"\x00", hash_name=hash_name).digest_size
        self._key = b"\x00" * digest_size
        self._value = b"\x01" * digest_size
        self.reseed_counter = 1
        self._update(bytes(seed) + bytes(personalization))

    def _hmac(self, key: bytes, data: bytes) -> bytes:
        return Hmac(key, data, hash_name=self._hash_name).digest()

    def _update(self, provided_data: bytes = b"") -> None:
        self._key = self._hmac(self._key, self._value + b"\x00" + provided_data)
        self._value = self._hmac(self._key, self._value)
        if provided_data:
            self._key = self._hmac(
                self._key, self._value + b"\x01" + provided_data)
            self._value = self._hmac(self._key, self._value)

    def reseed(self, entropy: bytes) -> None:
        """Mix additional entropy into the generator state."""
        if not entropy:
            raise ValueError("reseed entropy must be non-empty")
        self._update(bytes(entropy))
        self.reseed_counter = 1

    def generate(self, num_bytes: int) -> bytes:
        """Return ``num_bytes`` pseudo-random bytes."""
        if num_bytes < 0:
            raise ValueError("cannot generate a negative number of bytes")
        output = b""
        while len(output) < num_bytes:
            self._value = self._hmac(self._key, self._value)
            output += self._value
        self._update()
        self.reseed_counter += 1
        return output[:num_bytes]

    def random_uint(self, bits: int = 64) -> int:
        """Return a uniformly random unsigned integer with ``bits`` bits."""
        if bits <= 0 or bits % 8 != 0:
            raise ValueError("bits must be a positive multiple of 8")
        return int.from_bytes(self.generate(bits // 8), "big")

    def uniform(self, lower: float, upper: float) -> float:
        """Return a float uniformly distributed in ``[lower, upper)``.

        This is the ``map`` function from paper Section 3.5:
        ``map : x -> x mod (U - L) + L`` applied to the CSPRNG output,
        except that we map through a 53-bit fraction to avoid the
        modulo bias of the paper's illustrative formula.
        """
        if upper < lower:
            raise ValueError("upper bound must be >= lower bound")
        fraction = self.random_uint(64) / 2 ** 64
        return lower + fraction * (upper - lower)
