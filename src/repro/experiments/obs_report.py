"""Report-generation throughput: the obs analysis layer under load.

Not a paper artifact — this harness characterizes
:mod:`repro.obs.report` itself: how long it takes to turn a
1k-device span trace (plus a matching exposition) into the JSON
summary and the self-contained HTML flame view.  It backs the
``benchmarks/test_obs_report.py`` gate, so the analysis layer cannot
quietly become slower than the rounds it analyzes.

The input trace is *synthesized* straight through
:class:`~repro.obs.tracing.SpanTracer` on a scripted virtual clock —
no fleet is provisioned, so the benchmark times the analysis, not the
simulation.  The synthetic shape mirrors a real sharded round
(round span per worker, shard spans with ``devices``/``received``/
``lost`` attrs, one device-verify row per device) and is a pure
function of its arguments, so rows stay comparable commit to commit.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import ObsReport
from repro.obs.tracing import SpanTracer

#: Verify statuses cycled across synthetic devices (heavily healthy,
#: like a real fleet).
_STATUS_CYCLE = ("healthy",) * 17 + ("infected",) * 2 + ("no_data",)


class _ScriptedClock:
    """A manually advanced virtual clock for synthesizing traces."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now

    def __call__(self) -> float:
        return self.now


def build_trace(devices: int = 1000, rounds: int = 2, shards: int = 4,
                seed: int = 17) -> List[Dict[str, object]]:
    """Synthesize a sharded fleet trace: ``rounds`` rounds over
    ``devices`` devices split across ``shards`` shard workers."""
    clock = _ScriptedClock()
    tracer = SpanTracer(seed=seed, clock=clock)
    per_shard = max(devices // shards, 1)
    for round_index in range(rounds):
        clock.advance(600.0)
        for worker in range(shards):
            with tracer.trace_round(round_index,
                                    worker=str(worker)) as round_span:
                first = worker * per_shard
                last = devices if worker == shards - 1 \
                    else first + per_shard
                with tracer.trace_shard(round_span, worker,
                                        devices=last - first) as shard:
                    lost = 0
                    for index in range(first, last):
                        clock.advance(0.0001 * (1 + worker))
                        status = _STATUS_CYCLE[index % len(_STATUS_CYCLE)]
                        if status == "no_data":
                            lost += 1
                        tracer.record_device_verify(
                            shard, f"dev-{index:04d}", status)
                    shard.attrs["received"] = (last - first) - lost
                    shard.attrs["lost"] = lost
    return tracer.export_rows()


def build_exposition(devices: int = 1000, shards: int = 4,
                     seed: int = 17) -> str:
    """A matching synthetic exposition: per-shard verify histograms."""
    registry = MetricsRegistry(summary_quantiles=(0.5, 0.9, 0.99))
    verify = registry.histogram(
        "repro_device_verify_seconds",
        "Per-device verification latency, by shard worker.",
        labels=("shard",))
    rounds = registry.counter("repro_rounds_total",
                              "Collection rounds completed.")
    rounds.inc(2)
    for index in range(devices):
        worker = index % shards
        # A deterministic latency spread across three decades.
        latency = 0.00005 * (1 + (index * 7 + seed) % 100)
        verify.labels(str(worker)).observe(latency)
    return registry.render()


def run_report(devices: int = 1000, rounds: int = 2, shards: int = 4,
               seed: int = 17,
               trace: Optional[List[Dict[str, object]]] = None,
               exposition: Optional[str] = None) -> Dict[str, object]:
    """Generate the full report once; returns a timing/size row.

    ``trace``/``exposition`` let the benchmark synthesize inputs once
    in setup and time only the analysis.
    """
    if trace is None:
        trace = build_trace(devices=devices, rounds=rounds,
                            shards=shards, seed=seed)
    if exposition is None:
        exposition = build_exposition(devices=devices, shards=shards,
                                      seed=seed)
    started = time.perf_counter()
    report = ObsReport(trace, exposition=exposition, title="bench")
    summary_s = time.perf_counter() - started
    json_text = report.to_json()
    html_started = time.perf_counter()
    html_text = report.to_html()
    html_s = time.perf_counter() - html_started
    total = time.perf_counter() - started
    return {
        "devices": devices,
        "rounds": rounds,
        "shards": shards,
        "trace_spans": len(trace),
        "summary_s": summary_s,
        "html_s": html_s,
        "total_s": total,
        "spans_per_second": len(trace) / total if total > 0 else 0.0,
        "json_bytes": len(json_text),
        "html_bytes": len(html_text),
        "summary_rounds": report.summary["totals"]["rounds"],
        "summary_verifies": report.summary["totals"]["device_verifies"],
    }
