"""Table 2 — run-time of the collection phase on the i.MX6 (HYDRA).

Paper values (ms), for 10 MB of memory and keyed BLAKE2s:

=====================  ========  ============
Operation              ERASMUS   ERASMUS+OD
=====================  ========  ============
Verify request         N/A       0.005
Compute measurement    N/A       285.6
Construct UDP packet   0.003     0.003
Send UDP packet        0.012     0.012
Total                  0.015     285.6
=====================  ========  ============

The headline finding: the plain ERASMUS collection is cheaper than the
measurement phase by at least a factor of 3000, because it involves no
cryptography at all.
"""

from __future__ import annotations

from typing import Dict, List

from repro.hw.devices import ApplicationCPUModel

#: Paper values in milliseconds.
PAPER_TABLE2_MS: Dict[str, Dict[str, float | None]] = {
    "verify_request": {"erasmus": None, "erasmus+od": 0.005},
    "compute_measurement": {"erasmus": None, "erasmus+od": 285.6},
    "construct_packet": {"erasmus": 0.003, "erasmus+od": 0.003},
    "send_packet": {"erasmus": 0.012, "erasmus+od": 0.012},
    "total": {"erasmus": 0.015, "erasmus+od": 285.6},
}

_OPERATIONS = ("verify_request", "compute_measurement", "construct_packet",
               "send_packet", "total")


def run(memory_bytes: int = 10 * 1024 * 1024,
        mac_name: str = "keyed-blake2s",
        model: ApplicationCPUModel | None = None) -> List[Dict[str, object]]:
    """Regenerate Table 2: per-operation collection run-time in milliseconds."""
    model = model if model is not None else ApplicationCPUModel()
    erasmus = model.collection_runtime(memory_bytes, mac_name, on_demand=False)
    erasmus_od = model.collection_runtime(memory_bytes, mac_name,
                                          on_demand=True)
    rows: List[Dict[str, object]] = []
    for operation in _OPERATIONS:
        erasmus_value = erasmus[operation] * 1000
        erasmus_od_value = erasmus_od[operation] * 1000
        if operation in ("verify_request", "compute_measurement"):
            erasmus_cell: float | None = None
        else:
            erasmus_cell = erasmus_value
        rows.append({
            "operation": operation,
            "erasmus_ms": erasmus_cell,
            "erasmus+od_ms": erasmus_od_value,
            "paper:erasmus_ms": PAPER_TABLE2_MS[operation]["erasmus"],
            "paper:erasmus+od_ms": PAPER_TABLE2_MS[operation]["erasmus+od"],
        })
    return rows


def collection_vs_measurement_ratio(
        memory_bytes: int = 10 * 1024 * 1024,
        mac_name: str = "keyed-blake2s",
        model: ApplicationCPUModel | None = None) -> float:
    """Measurement run-time divided by plain-collection run-time.

    The paper reports this ratio as "at least a factor of 3000".
    """
    model = model if model is not None else ApplicationCPUModel()
    measurement = model.measurement_runtime(memory_bytes, mac_name)
    collection = model.collection_runtime(memory_bytes, mac_name,
                                          on_demand=False)["total"]
    return measurement / collection


def format_table(rows: List[Dict[str, object]]) -> str:
    """Render the rows as a text table shaped like the paper's Table 2."""
    lines = ["Table 2: Run-Time (ms) of Collection Phase on i.MX6 Sabre Lite"]
    lines.append(f"{'Operation':<24}{'ERASMUS':>12}{'ERASMUS+OD':>14}")
    for row in rows:
        erasmus_cell = row["erasmus_ms"]
        erasmus_text = f"{erasmus_cell:>12.3f}" if erasmus_cell is not None \
            else f"{'N/A':>12}"
        lines.append(f"{row['operation']:<24}{erasmus_text}"
                     f"{row['erasmus+od_ms']:>14.3f}")
    return "\n".join(lines)


def main() -> None:
    """Print the reproduced Table 2 and the collection/measurement ratio."""
    rows = run()
    print(format_table(rows))
    ratio = collection_vs_measurement_ratio()
    print(f"Measurement / collection run-time ratio: {ratio:,.0f}x "
          f"(paper: >= 3000x)")


if __name__ == "__main__":
    main()
