"""Fleet-collection throughput: devices per second across transports.

Not a paper artifact — this harness characterizes the reproduction's
own fleet service (:mod:`repro.fleet`): how fast one batched
``collect_all`` round (provision → schedule → collect → verify) runs
for a given fleet size over each transport.  It backs the
``benchmarks/test_fleet_collection.py`` throughput benchmark and gives
scaling PRs a fixed yardstick.
"""

from __future__ import annotations

import asyncio
import gc
import shutil
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.fleet import DeviceProfile, Fleet
from repro.store import JsonlStore, MemoryStore, SqliteStore, StateStore

DEFAULT_TRANSPORTS: Sequence[str] = ("in-process", "simulated-network",
                                     "swarm-relay")

#: Collection-path variants compared by :func:`run_concurrency_comparison`:
#: ``sync-baseline`` is the strictly sequential reference path (the PR 2
#: devices/second ceiling), ``async`` the pipelined ``collect_all``
#: default, ``sharded`` the :class:`repro.fleet.ShardedFleetVerifier`.
COLLECTION_MODES: Sequence[str] = ("sync-baseline", "async", "sharded")

#: Store backends compared by :func:`run_store_comparison`; ``baseline``
#: is a plain provision call (the :class:`MemoryStore` default path).
STORE_BACKENDS: Sequence[str] = ("baseline", "memory", "jsonl", "sqlite")

#: Observability modes compared by :func:`run_obs_comparison`:
#: ``baseline`` is a plain provision call, ``null`` threads the explicit
#: :data:`repro.obs.NULL_OBSERVABILITY` through the same seams (the two
#: time the identical code path — the row pins the claim that the
#: disabled instrumentation branches cost nothing), ``observed`` runs a
#: fully enabled :class:`repro.obs.Observability` with device tracing.
OBS_MODES: Sequence[str] = ("baseline", "null", "observed")


def default_profile() -> DeviceProfile:
    """The small SMART+ profile the throughput rows are measured with."""
    return DeviceProfile.smartplus(firmware=b"fleet-bench-firmware",
                                   application_size=512,
                                   measurement_interval=60.0,
                                   collection_interval=600.0,
                                   buffer_slots=16)


def run_round(transport: str, device_count: int,
              profile: Optional[DeviceProfile] = None,
              horizon: Optional[float] = None,
              max_workers: Optional[int] = None,
              store_factory: Optional[Callable[[], StateStore]] = None,
              mode: str = "async",
              shards: int = 4,
              obs: Optional[object] = None) -> Dict[str, object]:
    """One full fleet round over one transport; returns a result row.

    ``store_factory`` builds a fresh :class:`repro.store.StateStore`
    for this round, so the row includes the full write-through and
    checkpoint cost of that persistence backend.  ``mode`` picks the
    collection path (see :data:`COLLECTION_MODES`); ``shards`` only
    applies to the ``sharded`` mode.  ``obs`` is threaded through
    ``Fleet.provision(obs=...)`` so the row carries that observability
    mode's full instrumentation cost.
    """
    if mode not in COLLECTION_MODES:
        known = ", ".join(COLLECTION_MODES)
        raise ValueError(f"unknown collection mode {mode!r}; known: {known}")
    profile = profile if profile is not None else default_profile()
    if horizon is None:
        horizon = profile.config.collection_interval
    store = store_factory() if store_factory is not None else None
    fleet: Optional[Fleet] = None
    started = time.perf_counter()
    try:
        fleet = Fleet.provision(profile, device_count,
                                master_secret=b"fleet-bench-master-secret",
                                transport=transport, store=store,
                                shards=shards if mode == "sharded" else None,
                                obs=obs)
        provisioned = time.perf_counter()
        fleet.run_until(horizon)
        # Provisioning and measuring allocate millions of objects; sweep
        # the resulting garbage *before* the collect window so a stray
        # gen-2 GC pause (~tens of ms, comparable to the whole round)
        # does not land inside whichever mode happens to trigger it.
        gc.collect()
        measured = time.perf_counter()
        reports = fleet.collect_all(max_workers=max_workers,
                                    pipeline=(mode != "sync-baseline"))
        finished = time.perf_counter()
        sim_round_trip = fleet.now - horizon
    finally:
        # Release store handles (journal stream / DB connection) even
        # when provisioning or the round itself fails mid-way.
        if fleet is not None:
            fleet.close()
        elif store is not None:
            store.close()

    healthy = sum(1 for report in reports if not report.detected_infection())
    stats = reports.stats
    wall_time = finished - started
    return {
        "transport": fleet.transport.name,
        "mode": mode,
        "shards": stats.shards,
        "devices": device_count,
        "reports": len(reports),
        "healthy": healthy,
        "requests_sent": stats.requests_sent,
        "responses_lost": stats.responses_lost,
        "stale_responses_rejected": stats.stale_responses_rejected,
        "provision_s": provisioned - started,
        "measure_s": measured - provisioned,
        "collect_s": stats.wall_seconds,
        "wall_time_s": wall_time,
        "devices_per_second": device_count / wall_time if wall_time else 0.0,
        "collect_devices_per_second": stats.devices_per_second,
        "sim_round_trip_s": sim_round_trip,
    }


def run_concurrency_comparison(device_count: int = 1000,
                               transport: str = "in-process",
                               shards: int = 4,
                               modes: Sequence[str] = COLLECTION_MODES,
                               repeats: int = 1
                               ) -> List[Dict[str, object]]:
    """Devices/second for one round per collection path, same fleet shape.

    Provisioning is deterministic (profile plus master secret), so each
    mode collects an identical fleet with identical measurement
    histories — the rows differ only in how the round is driven:
    sequential reference loop, pipelined ``collect_all``, or the
    sharded verifier.  Each row is the best of ``repeats`` attempts
    (fresh fleet per attempt), the same best-of policy as
    :func:`run_store_comparison`: a collection round lasts ~100 ms, so
    a single stray gen-2 GC pause otherwise dominates the row.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    # Pay the one-time process-wide asyncio bootstrap (selector import,
    # first loop construction) outside the measured rows, so whichever
    # async mode happens to run first is not charged ~tens of ms of
    # interpreter warm-up the other rows skip.
    asyncio.run(asyncio.sleep(0))
    rows: List[Dict[str, object]] = []
    for mode in modes:
        best: Optional[Dict[str, object]] = None
        for _ in range(repeats):
            row = run_round(transport, device_count, mode=mode,
                            shards=shards)
            if best is None or row["collect_s"] < best["collect_s"]:
                best = row
        assert best is not None
        rows.append(best)
    return rows


def format_concurrency_table(rows: List[Dict[str, object]]) -> str:
    """Render the collection-path comparison as a fixed-width table."""
    baseline = next((row for row in rows if row["mode"] == "sync-baseline"),
                    rows[0])
    baseline_rate = float(baseline["collect_devices_per_second"])
    header = (f"{'mode':<14} {'devices':>8} {'shards':>7} {'collect (s)':>12} "
              f"{'collect dev/s':>14} {'vs baseline':>12}")
    lines = [header, "-" * len(header)]
    for row in rows:
        relative = float(row["collect_devices_per_second"]) / baseline_rate \
            if baseline_rate else 0.0
        lines.append(
            f"{row['mode']:<14} {row['devices']:>8} {row['shards']:>7} "
            f"{row['collect_s']:>12.3f} "
            f"{row['collect_devices_per_second']:>14.0f} {relative:>11.1%}")
    return "\n".join(lines)


def _store_factory(backend: str, directory: Path, attempt: int
                   ) -> Optional[Callable[[], StateStore]]:
    """A fresh-store factory for one benchmark attempt (or ``None``)."""
    if backend == "baseline":
        return None
    if backend == "memory":
        return MemoryStore
    if backend == "jsonl":
        return lambda: JsonlStore(directory / f"jsonl-{attempt}")
    if backend == "sqlite":
        directory.mkdir(parents=True, exist_ok=True)
        return lambda: SqliteStore(directory / f"store-{attempt}.sqlite")
    raise ValueError(f"unknown store backend {backend!r}")


def run_store_comparison(device_count: int = 300,
                         directory: Optional[str] = None,
                         repeats: int = 1,
                         backends: Sequence[str] = STORE_BACKENDS
                         ) -> List[Dict[str, object]]:
    """Devices/second for one in-process round per store backend.

    Each backend row is the best of ``repeats`` attempts (fresh store
    per attempt, so no backend ever replays a previous attempt's
    state); ``baseline`` is the plain provision path the PR 2
    throughput benchmark measured, i.e. the :class:`MemoryStore`
    default.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    if directory is None:
        with tempfile.TemporaryDirectory(prefix="erasmus-store-bench-") \
                as tempdir:
            return _compare_backends(Path(tempdir), device_count,
                                     repeats, backends)
    Path(directory).mkdir(parents=True, exist_ok=True)
    # A unique per-call subdirectory: reusing an attempt path would
    # replay the previous call's enrollments and trip the
    # duplicate-enrollment guard.  Removed afterwards — the result is
    # the rows, not the state files.
    base = Path(tempfile.mkdtemp(prefix="run-", dir=directory))
    try:
        return _compare_backends(base, device_count, repeats, backends)
    finally:
        shutil.rmtree(base, ignore_errors=True)


def _compare_backends(base: Path, device_count: int, repeats: int,
                      backends: Sequence[str]) -> List[Dict[str, object]]:
    """Best-of-``repeats`` in-process round per store backend."""
    rows: List[Dict[str, object]] = []
    for backend in backends:
        best: Optional[Dict[str, object]] = None
        for attempt in range(repeats):
            factory = _store_factory(backend, base / backend, attempt)
            row = run_round("in-process", device_count,
                            store_factory=factory)
            if best is None or row["wall_time_s"] < best["wall_time_s"]:
                best = row
        assert best is not None
        best["store"] = backend
        rows.append(best)
    return rows


def format_store_table(rows: List[Dict[str, object]]) -> str:
    """Render the store-overhead rows as a fixed-width table."""
    baseline = next((row for row in rows if row["store"] == "baseline"),
                    rows[0])
    baseline_rate = float(baseline["devices_per_second"])
    header = (f"{'store':<10} {'devices':>8} {'wall (s)':>9} "
              f"{'dev/s':>8} {'vs baseline':>12}")
    lines = [header, "-" * len(header)]
    for row in rows:
        relative = float(row["devices_per_second"]) / baseline_rate \
            if baseline_rate else 0.0
        lines.append(
            f"{row['store']:<10} {row['devices']:>8} "
            f"{row['wall_time_s']:>9.2f} "
            f"{row['devices_per_second']:>8.0f} {relative:>11.1%}")
    return "\n".join(lines)


def _obs_for_mode(mode: str) -> Optional[object]:
    """A fresh observability object for one benchmark attempt."""
    if mode == "baseline":
        return None
    # Imported here, not at module top: the experiments package predates
    # repro.obs and must stay importable if the subsystem is trimmed.
    from repro.obs import NULL_OBSERVABILITY, Observability
    if mode == "null":
        return NULL_OBSERVABILITY
    if mode == "observed":
        return Observability(seed=0)
    raise ValueError(f"unknown observability mode {mode!r}")


def run_obs_comparison(device_count: int = 1000,
                       transport: str = "in-process",
                       repeats: int = 1,
                       modes: Sequence[str] = OBS_MODES
                       ) -> List[Dict[str, object]]:
    """Devices/second for one round per observability mode.

    Provisioning is deterministic, so the rows collect identical fleets
    and differ only in instrumentation: ``baseline`` and ``null`` time
    the identical code path (``obs=None`` resolves to the null object),
    while ``observed`` pays the real metric/trace/store-wrap cost of a
    fully enabled :class:`repro.obs.Observability`.  Each row is the
    best of ``repeats`` attempts with a fresh observability object, the
    same best-of policy as :func:`run_store_comparison`.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    asyncio.run(asyncio.sleep(0))  # one-time loop bootstrap, unmeasured
    rows: List[Dict[str, object]] = []
    for mode in modes:
        best: Optional[Dict[str, object]] = None
        for _ in range(repeats):
            row = run_round(transport, device_count,
                            obs=_obs_for_mode(mode))
            if best is None or row["wall_time_s"] < best["wall_time_s"]:
                best = row
        assert best is not None
        best["obs"] = mode
        rows.append(best)
    return rows


def format_obs_table(rows: List[Dict[str, object]]) -> str:
    """Render the observability-overhead rows as a fixed-width table."""
    baseline = next((row for row in rows if row["obs"] == "baseline"),
                    rows[0])
    baseline_rate = float(baseline["devices_per_second"])
    header = (f"{'obs':<10} {'devices':>8} {'wall (s)':>9} "
              f"{'dev/s':>8} {'vs baseline':>12}")
    lines = [header, "-" * len(header)]
    for row in rows:
        relative = float(row["devices_per_second"]) / baseline_rate \
            if baseline_rate else 0.0
        lines.append(
            f"{row['obs']:<10} {row['devices']:>8} "
            f"{row['wall_time_s']:>9.2f} "
            f"{row['devices_per_second']:>8.0f} {relative:>11.1%}")
    return "\n".join(lines)


def run(device_count: int = 1000,
        transports: Sequence[str] = DEFAULT_TRANSPORTS,
        profile: Optional[DeviceProfile] = None,
        max_workers: Optional[int] = None) -> List[Dict[str, object]]:
    """One throughput row per transport for the given fleet size."""
    return [run_round(transport, device_count, profile=profile,
                      max_workers=max_workers)
            for transport in transports]


def format_table(rows: List[Dict[str, object]]) -> str:
    """Render the throughput rows as a fixed-width table."""
    header = (f"{'transport':<20} {'devices':>8} {'healthy':>8} "
              f"{'wall (s)':>9} {'dev/s':>8} {'collect dev/s':>14}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['transport']:<20} {row['devices']:>8} "
            f"{row['healthy']:>8} {row['wall_time_s']:>9.2f} "
            f"{row['devices_per_second']:>8.0f} "
            f"{row['collect_devices_per_second']:>14.0f}")
    return "\n".join(lines)


def main() -> None:
    """Print the fleet throughput, concurrency and store-overhead tables."""
    print(format_table(run()))
    print()
    print(format_concurrency_table(run_concurrency_comparison()))
    print()
    print(format_store_table(run_store_comparison()))
    print()
    print(format_obs_table(run_obs_comparison()))


if __name__ == "__main__":
    main()
