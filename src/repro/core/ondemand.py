"""On-demand attestation baseline (SMART+-style).

This is the approach ERASMUS is compared against throughout the paper:
the verifier sends an authenticated, timestamped request; the prover
authenticates it (anti-DoS), computes a measurement of its *current*
state in real time, and returns it.  There is no stored history, so:

* mobile malware that left before the request goes undetected;
* every attestation costs the prover a full measurement while the
  verifier waits.

The classes below deliberately mirror :class:`repro.core.prover.
ErasmusProver` / :class:`repro.core.verifier.ErasmusVerifier` so the
experiments can swap one for the other.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.arch.base import MeasurementAborted, SecurityArchitecture, \
    encode_timestamp
from repro.core.config import ErasmusConfig
from repro.core.measurement import Measurement
from repro.core.protocol import OnDemandRequest, OnDemandResponse
from repro.core.verifier import DeviceStatus, MeasurementVerdict, \
    VerificationReport
from repro.crypto.mac import get_mac


class OnDemandProver:
    """A prover that only supports classic on-demand attestation."""

    def __init__(self, architecture: SecurityArchitecture,
                 config: ErasmusConfig, device_id: str = "prover") -> None:
        self.architecture = architecture
        self.config = config
        self.device_id = device_id
        self.attestations_served = 0
        self.requests_refused = 0

    def handle_request(self, request: OnDemandRequest,
                       time: Optional[float] = None) -> OnDemandResponse:
        """Authenticate the request and attest the current state."""
        if time is not None:
            self.architecture.advance_clock(time)
        authentic = self.architecture.authenticate_request(
            payload=b"", tag=request.tag, request_time=request.request_time,
            freshness_window=self.config.request_freshness_window)
        if not authentic:
            self.requests_refused += 1
            return OnDemandResponse(fresh=None, measurements=[])
        try:
            output = self.architecture.perform_measurement()
        except MeasurementAborted:
            return OnDemandResponse(fresh=None, measurements=[])
        self.attestations_served += 1
        return OnDemandResponse(fresh=Measurement.from_output(output),
                                measurements=[])

    def attestation_runtime(self) -> float:
        """Prover-side run-time of one on-demand attestation."""
        return self.architecture.cost_model.attestation_runtime(
            self.architecture.measured_memory_bytes(),
            self.architecture.mac_name, on_demand=True)


class OnDemandVerifier:
    """A verifier using only on-demand attestation."""

    def __init__(self, config: ErasmusConfig) -> None:
        self.config = config
        self.mac_algorithm = get_mac(config.mac_name)
        self._keys: Dict[str, bytes] = {}
        self._healthy_digests: Dict[str, set[bytes]] = {}
        self.reports: list[VerificationReport] = []
        self._request_counter = 0.0

    def enroll(self, device_id: str, key: bytes,
               healthy_digests: Iterable[bytes]) -> None:
        """Register a prover: its shared key and its known-good states."""
        if not key:
            raise ValueError("the shared key must be non-empty")
        self._keys[device_id] = bytes(key)
        self._healthy_digests[device_id] = {bytes(d) for d in healthy_digests}

    def create_request(self, device_id: str,
                       request_time: float) -> OnDemandRequest:
        """Build an authenticated attestation request."""
        key = self._keys[device_id]
        if request_time <= self._request_counter:
            request_time = self._request_counter + 1e-6
        self._request_counter = request_time
        tag = self.mac_algorithm.mac(key, encode_timestamp(request_time))
        return OnDemandRequest(request_time=request_time, k=0, tag=tag)

    def verify_response(self, device_id: str, request: OnDemandRequest,
                        response: OnDemandResponse,
                        collection_time: float) -> VerificationReport:
        """Verify the single fresh measurement returned by the prover."""
        key = self._keys[device_id]
        report = VerificationReport(device_id=device_id,
                                    collection_time=collection_time,
                                    status=DeviceStatus.HEALTHY)
        if response.fresh is None:
            report.status = DeviceStatus.NO_DATA
            report.anomalies.append("prover returned no measurement")
            self.reports.append(report)
            return report
        measurement = response.fresh
        authentic = self.mac_algorithm.verify(
            key, measurement.authenticated_payload(), measurement.tag)
        # Public whitelist membership; the MAC check above is the
        # authentication decision.
        # statics: ok(constant-time)
        healthy = measurement.digest in self._healthy_digests[device_id]
        verdict = MeasurementVerdict(measurement=measurement,
                                     authentic=authentic, healthy=healthy)
        report.verdicts.append(verdict)
        report.freshness = collection_time - measurement.timestamp
        if not authentic or measurement.timestamp + 1e-6 < request.request_time:
            report.status = DeviceStatus.TAMPERED
            report.anomalies.append("fresh measurement is invalid or stale")
        elif not healthy:
            report.status = DeviceStatus.INFECTED
        self.reports.append(report)
        return report
