"""Tests for the transport abstraction: in-process, network, swarm relay."""

import pytest

from repro.core import CollectResponse, decode_response
from repro.fleet import (
    DeviceProfile,
    InProcessTransport,
    SimulatedNetworkTransport,
    SwarmRelayTransport,
    serve_request,
)
from repro.sim import SimulationEngine

FIRMWARE = b"transport-test-firmware"


@pytest.fixture
def profile() -> DeviceProfile:
    return DeviceProfile.smartplus(firmware=FIRMWARE, application_size=256,
                                   measurement_interval=10.0,
                                   collection_interval=60.0,
                                   buffer_slots=8)


def provision_into(transport, profile, engine, count):
    devices = []
    for index in range(count):
        device = profile.provision(f"t-{index}", master_secret=b"master")
        device.prover.attach(engine)
        transport.register(device)
        devices.append(device)
    return devices


def collect_request_bytes(profile) -> bytes:
    from repro.core import CollectRequest
    return CollectRequest(k=profile.config.measurements_per_collection).encode()


def test_serve_request_dispatches_collect(profile):
    device = profile.provision("solo", master_secret=b"master")
    engine = SimulationEngine()
    device.prover.attach(engine)
    engine.run(until=30.0)
    payload = serve_request(device.prover, collect_request_bytes(profile))
    response = decode_response(payload)
    assert isinstance(response, CollectResponse)
    assert len(response.measurements) == 3


@pytest.mark.parametrize("transport_cls", [InProcessTransport,
                                           SimulatedNetworkTransport,
                                           SwarmRelayTransport])
def test_same_exchange_code_runs_on_every_transport(profile, transport_cls):
    engine = SimulationEngine()
    transport = transport_cls(engine)
    provision_into(transport, profile, engine, 5)
    engine.run(until=60.0)

    request = collect_request_bytes(profile)
    responses = transport.exchange_many(
        {f"t-{index}": request for index in range(5)})
    assert set(responses) == {f"t-{index}" for index in range(5)}
    for payload in responses.values():
        assert payload is not None
        response = decode_response(payload)
        assert len(response.measurements) == 6


def test_duplicate_registration_rejected(profile):
    engine = SimulationEngine()
    transport = InProcessTransport(engine)
    [device] = provision_into(transport, profile, engine, 1)
    with pytest.raises(ValueError):
        transport.register(device)


def test_unregistered_device_raises(profile):
    engine = SimulationEngine()
    for transport in (InProcessTransport(engine),
                      SimulatedNetworkTransport(engine)):
        with pytest.raises(KeyError):
            transport.exchange("ghost", collect_request_bytes(profile))


def test_in_process_returns_none_on_garbage(profile):
    engine = SimulationEngine()
    transport = InProcessTransport(engine)
    provision_into(transport, profile, engine, 1)
    assert transport.exchange("t-0", b"\xff\xff\xff") is None


def test_network_transport_costs_virtual_time(profile):
    engine = SimulationEngine()
    transport = SimulatedNetworkTransport(engine, latency=0.05)
    provision_into(transport, profile, engine, 3)
    engine.run(until=60.0)
    before = engine.now
    responses = transport.exchange_many(
        {f"t-{index}": collect_request_bytes(profile) for index in range(3)})
    assert all(payload is not None for payload in responses.values())
    # One request/response round trip over 50 ms links: ≥ 100 ms.
    assert engine.now >= before + 0.1
    # Round trips overlapped instead of running sequentially.
    assert engine.now < before + 3 * 0.3


def test_network_transport_reports_lost_responses(profile):
    engine = SimulationEngine()
    transport = SimulatedNetworkTransport(engine, loss_probability=1.0,
                                          round_timeout=5.0)
    provision_into(transport, profile, engine, 2)
    engine.run(until=60.0)
    responses = transport.exchange_many(
        {"t-0": collect_request_bytes(profile),
         "t-1": collect_request_bytes(profile)})
    assert responses == {"t-0": None, "t-1": None}


def test_swarm_relay_builds_multi_hop_tree(profile):
    engine = SimulationEngine()
    transport = SwarmRelayTransport(engine, fanout=2, hop_latency=0.01)
    provision_into(transport, profile, engine, 7)
    depths = [transport.depth_of(f"t-{index}") for index in range(7)]
    # Fanout 2: two devices at depth 1, four at depth 2, one at depth 3.
    assert depths[:2] == [1, 1]
    assert max(depths) >= 2
    engine.run(until=60.0)
    before = engine.now
    responses = transport.exchange_many(
        {f"t-{index}": collect_request_bytes(profile) for index in range(7)})
    assert all(payload is not None for payload in responses.values())
    # Deeper devices pay more hops, so the round takes longer than one
    # direct round trip.
    assert engine.now > before + 2 * 0.01


def test_failed_register_leaves_tree_shape_unchanged(profile):
    """A failed registration must not skew later devices' parent slots."""
    engine = SimulationEngine()
    transport = SwarmRelayTransport(engine, fanout=2, hop_latency=0.01)
    control = SwarmRelayTransport(SimulationEngine(), fanout=2,
                                  hop_latency=0.01)
    provision_into(transport, profile, engine, 3)
    provision_into(control, profile, control.engine, 3)

    doomed = profile.provision("t-doomed", master_secret=b"master")
    original_add_link = transport.network.add_link

    def exploding_add_link(link):
        raise RuntimeError("link setup failed")

    transport.network.add_link = exploding_add_link
    with pytest.raises(RuntimeError):
        transport.register(doomed)
    transport.network.add_link = original_add_link

    # Nothing about the failed device stuck around...
    with pytest.raises(KeyError):
        transport.network.node("t-doomed")
    with pytest.raises(KeyError):
        transport.exchange("t-doomed", collect_request_bytes(profile))

    # ...and the devices registered afterwards parent exactly as they
    # would have without the failure.
    for index in range(3, 7):
        device = profile.provision(f"t-{index}", master_secret=b"master")
        device.prover.attach(engine)
        transport.register(device)
        twin = profile.provision(f"t-{index}", master_secret=b"master")
        twin.prover.attach(control.engine)
        control.register(twin)
    for index in range(7):
        assert transport.depth_of(f"t-{index}") == \
            control.depth_of(f"t-{index}")
    assert transport.network.neighbors(f"t-0") == \
        control.network.neighbors(f"t-0")


def test_stale_response_from_timed_out_round_is_discarded(profile):
    """A response still in flight when its round times out must not be
    recorded as the next round's answer."""
    engine = SimulationEngine()
    # 1 s one-way latency with a 0.5 s timeout: round 1 expires while
    # the prover's response is still in the air.
    transport = SimulatedNetworkTransport(engine, latency=1.0,
                                          round_timeout=0.5)
    provision_into(transport, profile, engine, 1)
    engine.run(until=30.0)

    first = transport.exchange("t-0", collect_request_bytes(profile))
    assert first is None  # timed out, response still in flight

    # Let the fleet measure more history, then run a patient round: the
    # stale round-1 response is stepped through and discarded, and the
    # fresh round-2 response (with the extra measurements) is returned.
    engine.run(until=60.0)
    transport.round_timeout = 30.0
    second = transport.exchange("t-0", collect_request_bytes(profile))
    assert second is not None
    response = decode_response(second)
    assert len(response.measurements) == 6  # history as of t>=60, not t=30


def test_sync_round_deregisters_even_when_a_stepped_event_raises(profile):
    """An exception mid-drive must not leak the pending round."""
    engine = SimulationEngine()
    transport = SimulatedNetworkTransport(engine, latency=0.05)
    provision_into(transport, profile, engine, 1)
    engine.run(until=30.0)

    def explode(_event):
        raise RuntimeError("handler died mid-round")

    engine.schedule(engine.now + 0.001, explode)
    with pytest.raises(RuntimeError):
        transport.exchange("t-0", collect_request_bytes(profile))
    assert not transport._pending  # the aborted round was deregistered

    # The aborted round's traffic is now stale: a later round steps
    # through it, rejects it, and still gets its own fresh answer.
    second = transport.exchange("t-0", collect_request_bytes(profile))
    assert second is not None
    assert transport.stale_responses_rejected == 1
