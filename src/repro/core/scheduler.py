"""Measurement scheduling disciplines.

Three disciplines from the paper:

* **Regular** (Section 3.1): a fixed interval ``T_M`` between successive
  self-measurements.
* **Irregular** (Section 3.5): the next interval is drawn from a CSPRNG
  seeded with the secret key ``K`` and mapped into ``[L, U]``, so that
  schedule-aware mobile malware cannot predict when the next measurement
  fires.  The timer deadline must be read-protected.
* **Lenient** (Section 5): measurements nominally fire every ``T_M`` but
  an aborted measurement (pre-empted by a time-critical task) may be
  rescheduled to any point within the current ``w * T_M`` window.

A scheduler answers one question — "given the time of the measurement
that just happened (or was aborted), when is the next one?" — and is
deliberately independent of the simulation engine so it can be analysed
in isolation (e.g. by the Section 3.5 evasion experiments).
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.core.config import ErasmusConfig, ScheduleKind
from repro.crypto.backend import BackendSpec
from repro.crypto.csprng import HmacDrbg


class MeasurementScheduler(abc.ABC):
    """Base class: produces the sequence of measurement times."""

    def __init__(self, measurement_interval: float) -> None:
        if measurement_interval <= 0:
            raise ValueError("T_M must be positive")
        self.measurement_interval = measurement_interval

    @abc.abstractmethod
    def next_interval(self, current_time: float) -> float:
        """Seconds to wait after ``current_time`` until the next measurement."""

    def next_time(self, current_time: float) -> float:
        """Absolute time of the next measurement after ``current_time``."""
        return current_time + self.next_interval(current_time)

    def reschedule_after_abort(self, abort_time: float,
                               window_start: float) -> Optional[float]:
        """Time at which to retry an aborted measurement, or ``None``.

        The default (regular / irregular schedules) gives up on the
        aborted measurement — the slot simply stays empty and the miss
        becomes visible to the verifier.
        """
        del abort_time, window_start
        return None

    def schedule(self, start_time: float, horizon: float) -> list[float]:
        """Generate all measurement times in ``(start_time, horizon]``."""
        times: list[float] = []
        current = start_time
        while True:
            current = self.next_time(current)
            if current > horizon:
                break
            times.append(current)
        return times


class RegularScheduler(MeasurementScheduler):
    """Fixed ``T_M`` between measurements (the paper's default)."""

    def next_interval(self, current_time: float) -> float:
        """Always ``T_M``."""
        del current_time
        return self.measurement_interval


class IrregularScheduler(MeasurementScheduler):
    """CSPRNG-driven intervals bounded by ``[lower, upper]`` (Section 3.5).

    The CSPRNG is seeded with the attestation key (plus an optional
    per-device nonce), so the verifier — who shares ``K`` — can
    regenerate the expected schedule, while malware on the prover
    cannot predict it (the timer deadline is read-protected, see
    :class:`repro.hw.timers.PeriodicTimer`).
    """

    def __init__(self, key: bytes, lower: float, upper: float,
                 device_nonce: bytes = b"",
                 backend: BackendSpec = None) -> None:
        if not 0 < lower <= upper:
            raise ValueError("bounds must satisfy 0 < lower <= upper")
        super().__init__(measurement_interval=(lower + upper) / 2)
        self.lower = lower
        self.upper = upper
        self._drbg = HmacDrbg(bytes(key), personalization=b"erasmus-schedule" +
                              bytes(device_nonce), backend=backend)

    def next_interval(self, current_time: float) -> float:
        """Draw the next interval from the CSPRNG, mapped into ``[L, U]``."""
        del current_time
        return self._drbg.uniform(self.lower, self.upper)

    def intervals(self, count: int) -> list[float]:
        """Draw ``count`` successive intervals in one batched call.

        Stream-identical to ``count`` :meth:`next_interval` calls; the
        verifier uses this to regenerate a whole expected schedule, and
        the evasion sweeps use it to amortize DRBG overhead.
        """
        return self._drbg.uniform_batch(self.lower, self.upper, count)


class LenientScheduler(MeasurementScheduler):
    """Regular schedule with a ``w * T_M`` window for aborted measurements.

    Under normal conditions this behaves exactly like
    :class:`RegularScheduler`.  When a measurement is aborted, the
    prover retries at the end of the current window rather than skipping
    the measurement entirely.
    """

    def __init__(self, measurement_interval: float,
                 window_factor: float = 2.0) -> None:
        if window_factor < 1.0:
            raise ValueError("the window factor w must be >= 1")
        super().__init__(measurement_interval)
        self.window_factor = window_factor

    def next_interval(self, current_time: float) -> float:
        """Nominal interval is still ``T_M``."""
        del current_time
        return self.measurement_interval

    def window_length(self) -> float:
        """Length of the lenient window: ``w * T_M``."""
        return self.window_factor * self.measurement_interval

    def reschedule_after_abort(self, abort_time: float,
                               window_start: float) -> Optional[float]:
        """Retry at the end of the current window, if there is room left."""
        window_end = window_start + self.window_length()
        if abort_time >= window_end:
            return None
        return window_end


def build_scheduler(config: ErasmusConfig, key: bytes = b"",
                    device_nonce: bytes = b"") -> MeasurementScheduler:
    """Build the scheduler matching an :class:`ErasmusConfig`."""
    if config.schedule is ScheduleKind.REGULAR:
        return RegularScheduler(config.measurement_interval)
    if config.schedule is ScheduleKind.IRREGULAR:
        if not key:
            raise ValueError("irregular scheduling needs the key K as seed")
        assert config.irregular_lower is not None
        assert config.irregular_upper is not None
        return IrregularScheduler(key, config.irregular_lower,
                                  config.irregular_upper,
                                  device_nonce=device_nonce,
                                  backend=config.crypto_backend)
    if config.schedule is ScheduleKind.LENIENT:
        return LenientScheduler(config.measurement_interval,
                                config.lenient_window_factor)
    raise ValueError(f"unknown schedule kind {config.schedule!r}")
