"""Benchmark: regenerate Table 2 (collection-phase run-time on i.MX6)."""

import pytest

from repro.experiments import table2_collection


def test_table2_regeneration(benchmark):
    rows = benchmark(table2_collection.run)
    by_operation = {row["operation"]: row for row in rows}
    assert by_operation["total"]["erasmus_ms"] == pytest.approx(0.015,
                                                                abs=0.002)
    assert by_operation["total"]["erasmus+od_ms"] == pytest.approx(285.6,
                                                                   rel=0.02)


def test_collection_vs_measurement_factor(benchmark):
    ratio = benchmark(table2_collection.collection_vs_measurement_ratio)
    # Paper: collection is cheaper than measurement by at least 3000x.
    assert ratio >= 3000
