"""Section 5 — availability for time-sensitive applications.

A measurement can take seconds on a low-end device (7 s at 10 KB /
8 MHz), during which the application is unavailable.  The paper
discusses two mitigations: scheduling awareness and aborting/lenient
rescheduling with a window of ``w * T_M``.

This harness simulates a prover running periodic time-critical tasks
(each with a deadline) alongside ERASMUS self-measurements and reports:

* the fraction of critical tasks whose window collides with a
  measurement (strict scheduling);
* the fraction of measurements lost vs rescheduled when the prover
  aborts measurements that collide, for several window factors ``w``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.scheduler import LenientScheduler, RegularScheduler

DEFAULT_WINDOW_FACTORS: Sequence[float] = (1.0, 1.5, 2.0, 3.0)


@dataclass(frozen=True)
class CriticalTask:
    """A periodic time-critical task: busy windows the prover must honour."""

    period: float
    busy_time: float

    def active_at(self, time: float) -> bool:
        """True when a task instance is running at ``time``."""
        return (time % self.period) < self.busy_time

    def windows(self, horizon: float) -> List[tuple[float, float]]:
        """All busy windows up to ``horizon``."""
        result = []
        start = 0.0
        while start < horizon:
            result.append((start, start + self.busy_time))
            start += self.period
        return result


def run(measurement_interval: float = 60.0,
        measurement_runtime: float = 7.0,
        task_period: float = 45.0,
        task_busy_time: float = 10.0,
        window_factors: Sequence[float] = DEFAULT_WINDOW_FACTORS,
        horizon: float = 24 * 3600.0) -> List[Dict[str, object]]:
    """Simulate strict vs lenient scheduling alongside a critical task.

    Returns one row per window factor ``w`` with collision, loss and
    recovery statistics (``w = 1.0`` is effectively strict scheduling:
    an aborted measurement cannot be retried within its own window).
    """
    task = CriticalTask(period=task_period, busy_time=task_busy_time)
    rows: List[Dict[str, object]] = []
    for window_factor in window_factors:
        scheduler = LenientScheduler(measurement_interval, window_factor) \
            if window_factor > 1.0 else RegularScheduler(measurement_interval)
        taken = 0
        aborted = 0
        recovered = 0
        lost = 0
        collisions = 0
        time = 0.0
        while True:
            window_start = time
            time = scheduler.next_time(time)
            if time > horizon:
                break
            if not _collides(time, measurement_runtime, task):
                taken += 1
                continue
            collisions += 1
            aborted += 1
            retry = scheduler.reschedule_after_abort(time, window_start)
            if retry is not None and retry <= horizon and \
                    not _collides(retry, measurement_runtime, task):
                recovered += 1
                taken += 1
            else:
                lost += 1
        scheduled = taken + lost
        rows.append({
            "window_factor": window_factor,
            "measurements_scheduled": scheduled,
            "measurements_taken": taken,
            "collisions": collisions,
            "aborted": aborted,
            "recovered": recovered,
            "lost": lost,
            "loss_rate": lost / scheduled if scheduled else 0.0,
            "task_interference_rate": collisions / scheduled if scheduled
            else 0.0,
        })
    return rows


def _collides(measurement_start: float, measurement_runtime: float,
              task: CriticalTask) -> bool:
    """Does a measurement starting now overlap a critical-task window?"""
    # A collision happens when a task instance starts (or is running)
    # anywhere inside the measurement's execution window.
    window_end = measurement_start + measurement_runtime
    first_task_start = (measurement_start // task.period) * task.period
    task_start = first_task_start
    while task_start < window_end:
        task_end = task_start + task.busy_time
        if task_start < window_end and measurement_start < task_end:
            return True
        task_start += task.period
    return False


def format_table(rows: List[Dict[str, object]]) -> str:
    """Render the availability sweep as a text table."""
    lines = ["Section 5: measurement loss under strict vs lenient scheduling"]
    lines.append(f"{'w':>6}{'scheduled':>11}{'taken':>8}{'aborted':>9}"
                 f"{'recovered':>11}{'lost':>7}{'loss rate':>11}")
    for row in rows:
        lines.append(f"{row['window_factor']:>6.1f}"
                     f"{row['measurements_scheduled']:>11}"
                     f"{row['measurements_taken']:>8}"
                     f"{row['aborted']:>9}{row['recovered']:>11}"
                     f"{row['lost']:>7}{row['loss_rate']:>11.3f}")
    return "\n".join(lines)


def main() -> None:
    """Print the availability sweep."""
    print(format_table(run()))


if __name__ == "__main__":
    main()
