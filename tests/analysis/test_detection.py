"""Tests for the timeline-level detection analysis."""

import math

import pytest

from repro.adversary import Infection, MalwareCampaign
from repro.analysis import (
    detection_latency,
    infection_detected,
    simulate_detection,
)
from repro.core.scheduler import IrregularScheduler


def test_infection_detected_when_measurement_falls_inside():
    infection = Infection("dev", start=25.0, end=45.0)
    assert infection_detected(infection, [10.0, 30.0, 60.0])
    assert not infection_detected(infection, [10.0, 50.0, 60.0])
    persistent = Infection("dev", start=25.0)
    assert infection_detected(persistent, [100.0])


def test_detection_latency_uses_first_collection_after_evidence():
    infection = Infection("dev", start=25.0, end=45.0)
    latency = detection_latency(infection, measurement_times=[30.0, 40.0],
                                collection_times=[20.0, 100.0, 200.0])
    assert latency == pytest.approx(75.0)
    assert detection_latency(infection, [50.0], [100.0]) is None
    assert detection_latency(infection, [30.0], [10.0]) is None


def test_simulate_detection_erasmus_beats_on_demand():
    campaign = MalwareCampaign(arrival_rate=1 / 400.0, mean_dwell=40.0, seed=5)
    erasmus = simulate_detection(60.0, 600.0, campaign, horizon=200_000.0)
    on_demand = simulate_detection(60.0, 600.0, campaign, horizon=200_000.0,
                                   on_demand_only=True)
    assert erasmus.total_infections == on_demand.total_infections > 50
    assert erasmus.detection_rate > on_demand.detection_rate
    assert erasmus.detection_rate > 0.3


def test_detection_rate_matches_analytic_for_exponential_dwell():
    # For exponentially distributed dwell with mean d, the detection
    # probability under a regular T_M schedule is (d/T_M)(1 - e^(-T_M/d)).
    measurement_interval = 60.0
    mean_dwell = 60.0
    campaign = MalwareCampaign(arrival_rate=1 / 500.0, mean_dwell=mean_dwell,
                               seed=11)
    summary = simulate_detection(measurement_interval, 600.0, campaign,
                                 horizon=400_000.0)
    expected = (mean_dwell / measurement_interval) * \
        (1 - math.exp(-measurement_interval / mean_dwell))
    assert summary.detection_rate == pytest.approx(expected, abs=0.08)


def test_latencies_bounded_by_collection_interval():
    campaign = MalwareCampaign(arrival_rate=1 / 300.0, mean_dwell=120.0,
                               seed=2)
    summary = simulate_detection(30.0, 300.0, campaign, horizon=50_000.0)
    assert summary.mean_latency is not None
    assert summary.max_latency <= 300.0 + 120.0 + 30.0
    assert summary.mean_latency < summary.max_latency + 1e-9


def test_custom_scheduler_is_honoured():
    campaign = MalwareCampaign(arrival_rate=1 / 300.0, mean_dwell=50.0, seed=4)
    scheduler = IrregularScheduler(b"key", lower=30.0, upper=90.0)
    summary = simulate_detection(60.0, 600.0, campaign, horizon=40_000.0,
                                 scheduler=scheduler)
    assert summary.measurement_count > 400


def test_no_infections_counts_as_full_detection():
    campaign = MalwareCampaign(arrival_rate=1e-9, mean_dwell=10.0, seed=1)
    summary = simulate_detection(60.0, 600.0, campaign, horizon=1000.0)
    assert summary.total_infections == 0
    assert summary.detection_rate == 1.0
    assert summary.mean_latency is None


def test_invalid_horizon_rejected():
    campaign = MalwareCampaign(arrival_rate=0.1, mean_dwell=1.0)
    with pytest.raises(ValueError):
        simulate_detection(60.0, 600.0, campaign, horizon=0.0)


# ---------------------------------------------------------------------------
# Fleet-level matching: ground truth vs VerificationReport streams
# ---------------------------------------------------------------------------

from repro.adversary import Infection
from repro.analysis import first_exposing_report, match_fleet_reports
from repro.core.verification import DeviceStatus, VerificationReport


def _report(device_id, time, status=DeviceStatus.HEALTHY, restored=None):
    return VerificationReport(device_id=device_id, collection_time=time,
                              status=status, restored=restored)


def _infected(device_id, time, timestamps):
    return VerificationReport(
        device_id=device_id, collection_time=time,
        status=DeviceStatus.INFECTED,
        restored={"measurements": len(timestamps),
                  "infected_timestamps": list(timestamps)})


def test_first_exposing_report_picks_earliest_match():
    infection = Infection(device_id="dev", start=100.0, end=150.0)
    reports = [
        _report("dev", 60.0),
        _infected("dev", 180.0, [120.0]),
        _infected("dev", 240.0, [130.0]),
    ]
    exposing = first_exposing_report(infection, reports)
    assert exposing is not None and exposing.collection_time == 180.0


def test_exposing_report_needs_timestamp_inside_interval():
    infection = Infection(device_id="dev", start=100.0, end=150.0)
    # anomalous timestamps belong to a *different* infection window
    reports = [_infected("dev", 180.0, [50.0])]
    assert first_exposing_report(infection, reports) is None


def test_tampered_report_counts_without_timestamps():
    infection = Infection(device_id="dev", start=100.0,
                          malicious_image=b"")
    reports = [_report("dev", 120.0, status=DeviceStatus.TAMPERED)]
    exposing = first_exposing_report(infection, reports)
    assert exposing is not None


def test_reports_before_infection_never_count():
    infection = Infection(device_id="dev", start=100.0)
    reports = [_report("dev", 60.0, status=DeviceStatus.TAMPERED)]
    assert first_exposing_report(infection, reports) is None


def test_match_fleet_reports_aggregates_per_device():
    truth = {
        "dev-a": [Infection("dev-a", start=100.0, end=150.0)],
        "dev-b": [Infection("dev-b", start=200.0, end=220.0)],
        "dev-c": [],
    }
    reports = [
        _infected("dev-a", 180.0, [120.0]),
        _report("dev-b", 240.0),  # healthy: dev-b's infection missed
    ]
    summary = match_fleet_reports(truth, reports)
    assert summary.total_infections == 2
    assert summary.detected_infections == 1
    assert summary.detection_rate == 0.5
    assert summary.infected_devices == 2
    assert summary.detected_devices == 1
    assert summary.latencies == [80.0]
    assert summary.mean_latency == 80.0
    assert summary.max_latency == 80.0


def test_match_fleet_reports_empty_truth_is_full_detection():
    summary = match_fleet_reports({}, [])
    assert summary.total_infections == 0
    assert summary.detection_rate == 1.0
    assert summary.mean_latency is None
