"""Tests for the campaign runner: cells end to end, grids, artifacts."""

import json

import pytest

from repro.campaign import CampaignRunner, Scenario, run_scenario


def small(**overrides):
    base = dict(devices=8, horizon=1800.0, measurement_interval=60.0,
                collection_interval=600.0, malware="mobile", dwell=120.0,
                arrival_rate=1 / 600.0, victim_fraction=0.5, seed=3)
    base.update(overrides)
    return Scenario(**base)


class TestRunScenario:
    def test_mobile_cell_detects_long_dwell(self):
        result = run_scenario(small())
        assert result.detection.total_infections > 0
        # dwell 2x T_M: every infection spans a measurement
        assert result.detection.detection_rate == 1.0
        assert result.analytic_detection() == 1.0
        assert len(result.rounds) == 3
        assert all(s.requests_sent == 8 for s in result.rounds)

    def test_on_demand_misses_short_dwell(self):
        erasmus = run_scenario(small(dwell=30.0, devices=40, seed=5))
        ondemand = run_scenario(small(dwell=30.0, devices=40, seed=5,
                                      protocol="on-demand"))
        assert erasmus.detection.detection_rate > \
            3 * ondemand.detection.detection_rate
        assert ondemand.analytic_detection() == pytest.approx(0.05)

    def test_clean_cell_has_no_infections(self):
        result = run_scenario(small(malware="none"))
        assert result.detection.total_infections == 0
        assert result.detection.detection_rate == 1.0

    def test_downtime_skips_rounds(self):
        result = run_scenario(small(verifier_downtime=((550.0, 650.0),)))
        assert result.skipped_rounds == 1
        assert len(result.rounds) == 2

    def test_store_crash_recovers(self):
        result = run_scenario(small(store_crash_round=2))
        assert result.recovered_rounds == 1
        assert len(result.rounds) == 3

    def test_partition_fault_drops_exchanges(self):
        result = run_scenario(small(
            fault_partition_windows=((550.0, 650.0),),
            fault_partition_fraction=0.5))
        assert result.dropped_exchanges > 0
        lost = sum(s.responses_lost for s in result.rounds)
        assert lost == result.dropped_exchanges

    def test_tampering_cell_detected(self):
        result = run_scenario(small(malware="tampering"))
        assert result.detection.total_infections > 0
        assert result.detection.detection_rate == 1.0
        assert result.analytic_detection() is None

    def test_swarm_relay_with_partition_merge_mobility(self):
        result = run_scenario(small(
            devices=12, transport="swarm-relay",
            mobility="partition-merge", partition_period=600.0,
            merged_fraction=0.5))
        assert result.detection.total_infections > 0
        assert len(result.rounds) == 3

    def test_row_is_deterministic_and_excludes_wall_clock(self):
        scenario = small(seed=21)
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        row_a = json.dumps(first.to_row(), sort_keys=True)
        row_b = json.dumps(second.to_row(), sort_keys=True)
        assert row_a == row_b
        assert "wall" not in row_a
        assert first.wall_seconds > 0.0


class TestCampaignRunner:
    def test_grid_results_in_cell_order(self):
        from repro.campaign import ScenarioGrid
        grid = ScenarioGrid(base=small(devices=6),
                            axes={"protocol": ["erasmus", "on-demand"]})
        runner = CampaignRunner(grid, name="order")
        results = runner.run()
        assert [r.scenario.protocol for r in results] == \
            ["erasmus", "on-demand"]

    def test_parallel_run_matches_serial(self):
        cells = [small(devices=6, seed=s) for s in (1, 2, 3)]
        serial = CampaignRunner(cells)
        parallel = CampaignRunner(cells, max_workers=3)
        serial.run()
        parallel.run()
        assert json.dumps(serial.rows(), sort_keys=True) == \
            json.dumps(parallel.rows(), sort_keys=True)

    def test_artifact_written_as_single_json(self, tmp_path):
        runner = CampaignRunner([small(devices=6)], name="artifact-test")
        runner.run()
        path = tmp_path / "campaign.json"
        document = runner.write_artifact(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(document))
        assert loaded["campaign"] == "artifact-test"
        assert loaded["cell_count"] == 1
        detection = loaded["cells"][0]["detection"]
        assert set(detection) >= {"detection_rate",
                                  "mean_time_to_detection_s",
                                  "total_infections"}
        assert len(loaded["timing"]["wall_seconds_per_cell"]) == 1

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError, match="at least one scenario"):
            CampaignRunner([])
