"""The metrics registry: instruments, labels, and the text exposition."""

import pytest

from repro.obs import MetricError, MetricsRegistry


def test_counter_counts_and_renders():
    registry = MetricsRegistry()
    counter = registry.counter("jobs_total", "Jobs processed.")
    counter.inc()
    counter.inc(4)
    assert counter.value() == 5
    text = registry.render()
    assert "# HELP jobs_total Jobs processed." in text
    assert "# TYPE jobs_total counter" in text
    assert "jobs_total 5" in text


def test_counter_rejects_negative_increment():
    counter = MetricsRegistry().counter("c")
    with pytest.raises(MetricError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = MetricsRegistry().gauge("inflight")
    gauge.inc()
    gauge.inc()
    gauge.dec()
    assert gauge.value() == 1
    gauge.set(7.5)
    assert gauge.value() == 7.5


def test_labelled_children_are_cached_and_sorted():
    registry = MetricsRegistry()
    counter = registry.counter("reports_total", labels=("status",))
    healthy = counter.labels("healthy")
    assert counter.labels("healthy") is healthy  # cached child
    counter.labels("no_data").inc(2)
    healthy.inc()
    text = registry.render()
    # Children render sorted by label value, whatever the touch order.
    assert text.index('status="healthy"') < text.index('status="no_data"')
    assert 'reports_total{status="no_data"} 2' in text
    assert counter.value("healthy") == 1
    assert counter.value("never_seen") == 0.0


def test_labels_by_keyword_and_arity_errors():
    counter = MetricsRegistry().counter("x", labels=("op", "outcome"))
    assert counter.labels(op="read", outcome="ok") is \
        counter.labels("read", "ok")
    with pytest.raises(MetricError):
        counter.labels("read")  # missing a value
    with pytest.raises(MetricError):
        counter.labels("read", outcome="ok")  # mixed styles
    with pytest.raises(MetricError):
        counter.labels(op="read", wrong="ok")


def test_histogram_buckets_are_cumulative_with_inf():
    registry = MetricsRegistry()
    hist = registry.histogram("latency", buckets=(0.1, 1.0))
    for value in (0.05, 0.05, 0.5, 5.0):
        hist.observe(value)
    text = registry.render()
    assert 'latency_bucket{le="0.1"} 2' in text
    assert 'latency_bucket{le="1"} 3' in text
    assert 'latency_bucket{le="+Inf"} 4' in text
    assert "latency_sum 5.6" in text
    assert "latency_count 4" in text


def test_histogram_boundary_observation_lands_in_its_bucket():
    hist = MetricsRegistry().histogram("h", buckets=(1.0,))
    hist.observe(1.0)  # le="1" is inclusive, Prometheus-style
    child = hist.labels()
    assert child.counts[0] == 1


def test_histogram_needs_buckets():
    with pytest.raises(MetricError):
        MetricsRegistry().histogram("h", buckets=())


def test_reregistration_is_idempotent_on_matching_signature():
    registry = MetricsRegistry()
    first = registry.counter("c", labels=("op",))
    again = registry.counter("c", labels=("op",))
    assert again is first
    with pytest.raises(MetricError):
        registry.counter("c")  # different labels
    with pytest.raises(MetricError):
        registry.gauge("c", labels=("op",))  # different kind


def test_label_values_are_escaped():
    registry = MetricsRegistry()
    counter = registry.counter("c", labels=("path",))
    counter.labels('a"b\\c\nd').inc()
    text = registry.render()
    assert 'path="a\\"b\\\\c\\nd"' in text


def test_render_is_deterministic_across_registries():
    def build():
        registry = MetricsRegistry()
        # Registration/touch order deliberately differs from sort order.
        registry.gauge("z_gauge").set(1)
        counter = registry.counter("a_total", labels=("s",))
        counter.labels("b").inc()
        counter.labels("a").inc(2)
        hist = registry.histogram("m_seconds", buckets=(0.5, 2.0))
        hist.observe(0.1)
        return registry

    one = build()
    two = MetricsRegistry()
    hist = two.histogram("m_seconds", buckets=(0.5, 2.0))
    hist.observe(0.1)
    counter = two.counter("a_total", labels=("s",))
    counter.labels("a").inc(2)
    counter.labels("b").inc()
    two.gauge("z_gauge").set(1)
    assert one.render() == two.render()


def test_empty_registry_renders_empty():
    assert MetricsRegistry().render() == ""
