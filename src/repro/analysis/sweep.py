"""Generic parameter-sweep helper used by the experiment harnesses."""

from __future__ import annotations

import itertools
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence


@dataclass
class SweepResult:
    """One point of a parameter sweep: the parameters and the outcome."""

    parameters: Dict[str, Any]
    outcome: Any


@dataclass
class ParameterSweep:
    """Cartesian-product parameter sweep.

    ``parameters`` maps parameter names to the list of values to try;
    :meth:`run` calls ``function(**combination)`` for every combination
    and collects :class:`SweepResult` objects, preserving order.
    """

    parameters: Dict[str, Sequence[Any]]
    results: List[SweepResult] = field(default_factory=list)

    def combinations(self) -> List[Dict[str, Any]]:
        """All parameter combinations, in deterministic order."""
        names = list(self.parameters)
        value_lists = [list(self.parameters[name]) for name in names]
        return [dict(zip(names, values))
                for values in itertools.product(*value_lists)]

    def run(self, function: Callable[..., Any],
            max_workers: Optional[int] = None) -> List[SweepResult]:
        """Evaluate ``function`` on every combination and store the results.

        With ``max_workers`` greater than one, combinations are
        evaluated on a thread pool (results keep combination order).
        Sweep functions dominated by stdlib crypto or simulation bursts
        overlap well; pass ``None`` (the default) for strictly serial
        evaluation.
        """
        combinations = self.combinations()
        if max_workers is not None and max_workers > 1 and \
                len(combinations) > 1:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                outcomes = list(pool.map(
                    lambda combination: function(**combination),
                    combinations))
        else:
            outcomes = [function(**combination)
                        for combination in combinations]
        self.results = [
            SweepResult(parameters=combination, outcome=outcome)
            for combination, outcome in zip(combinations, outcomes)
        ]
        return self.results

    def column(self, parameter: str) -> List[Any]:
        """Values of one parameter across the collected results."""
        return [result.parameters[parameter] for result in self.results]

    def outcomes(self) -> List[Any]:
        """All outcomes, in run order."""
        return [result.outcome for result in self.results]

    def as_table(self, outcome_name: str = "outcome") -> List[Dict[str, Any]]:
        """Results flattened into a list of rows (dicts), one per combination."""
        table = []
        for result in self.results:
            row = dict(result.parameters)
            if isinstance(result.outcome, dict):
                row.update(result.outcome)
            else:
                row[outcome_name] = result.outcome
            table.append(row)
        return table
