"""The fleet attestation service: enrollment, batched collection, reports.

This is the canonical public API for running ERASMUS at fleet scale:

* :class:`FleetVerifier` — enrolls any number of provers and runs
  batched/sharded collection rounds over a :class:`~repro.fleet.transport.
  Transport`, streaming every :class:`VerificationReport` to the
  configured sinks and into a running :class:`FleetHealth` aggregate;
* :class:`Fleet` — the one-call facade: provision ``count`` devices
  from a :class:`DeviceProfile`, wire them to a transport and a shared
  simulation engine, and expose ``run_until`` / ``collect_all``.

The verification itself is the stateless
:class:`repro.core.verification.VerificationCore`, shared with the
legacy single-device :class:`repro.core.ErasmusVerifier`.
"""

from __future__ import annotations

import asyncio
import threading
import time as _time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Union,
)

from repro.core.config import ErasmusConfig
from repro.core.protocol import (
    OnDemandResponse,
    ProtocolDecodeError,
    decode_response,
)
from repro.core.verification import (
    BaseVerifier,
    DeviceJudge,
    DeviceStatus,
    DuplicateEnrollmentError,
    VerificationReport,
)
from repro.fleet.profiles import DeviceProfile, ProvisionedDevice
from repro.fleet.sinks import FleetHealth, ReportSink, RoundStats, SinkFanout
from repro.fleet.transport import (
    AsyncTransport,
    InProcessTransport,
    SimulatedNetworkTransport,
    SocketTransport,
    SwarmRelayTransport,
    Transport,
    as_async_transport,
)
from repro.fleet.workers import WorkerCrashed, WorkerPool, decode_result
from repro.sim.engine import SimulationEngine
from repro.statics.runtime import named_lock
from repro.store import MemoryStore, StateStore

if TYPE_CHECKING:  # pragma: no cover — import cycle broken at runtime
    from repro.obs.service import Observability


def _default_obs() -> "Observability":
    """The shared inert observability object.

    Imported lazily: ``repro.obs`` itself imports ``repro.fleet.sinks``
    (SLO rules stream over the report fanout), so a module-level import
    here would close an import cycle.  By the time any verifier is
    *constructed* both packages are fully initialized.
    """
    from repro.obs.service import NULL_OBSERVABILITY
    return NULL_OBSERVABILITY


#: Default number of devices verified per shard of a collection round.
DEFAULT_BATCH_SIZE = 256

#: Default number of shards a pipelined round keeps in flight at once.
DEFAULT_MAX_INFLIGHT_SHARDS = 4


class RoundReports(List[VerificationReport]):
    """One round's reports, with the round's :class:`RoundStats` attached.

    A plain list everywhere a list was expected historically; the
    collection mechanics ride along on :attr:`stats`.
    """

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.stats = RoundStats()


def _ensure_no_running_loop(hint: str) -> None:
    """Refuse to run a blocking round body inside an event loop."""
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return
    raise RuntimeError(
        f"collect_all would block the running event loop; {hint}")


def _close_released(sinks: Iterable[ReportSink],
                    store: Optional[StateStore]) -> None:
    """Close every sink, then the store; first failure raised at the end.

    One sink failing to close never prevents the remaining sinks or
    the store from being released.  Already-closed sinks close
    themselves idempotently, so calling this after a failed round (or
    twice) is harmless.  Sink release delegates to
    :meth:`SinkFanout.close` so the close-all/keep-first-error policy
    lives in exactly one place.
    """
    first_error: Optional[BaseException] = None
    try:
        SinkFanout(sinks).close()
    except Exception as exc:
        first_error = exc
    if store is not None:
        try:
            store.close()
        except Exception as exc:
            if first_error is None:
                first_error = exc
    if first_error is not None:
        raise first_error


class FleetVerifier(BaseVerifier):
    """A verifier service managing an enrolled fleet of provers.

    Parameters mirror the legacy :class:`repro.core.ErasmusVerifier`
    (same ``schedule_tolerance`` / ``allowed_missing`` policy knobs);
    ``sinks`` is any iterable of :class:`ReportSink` that each finished
    report is streamed to, in enrollment-independent arrival order.

    ``store`` selects the :class:`repro.store.StateStore` backend the
    verifier's state is committed through — every enrollment change is
    written through immediately, every finished report is journaled,
    and the aggregate :class:`FleetHealth` is checkpointed at the end
    of each collection round.  The default :class:`repro.store.
    MemoryStore` keeps the historical in-process behaviour; pass a
    :class:`repro.store.JsonlStore` or :class:`repro.store.SqliteStore`
    to make the deployment restartable via :meth:`restore`.

    ``obs`` attaches a :class:`repro.obs.Observability` to the
    collection hot path: per-device verify latency histograms, round
    counters and span traces.  The default (``None`` →
    :data:`repro.obs.NULL_OBSERVABILITY`) keeps every instrumented
    path at historical cost behind a single ``enabled`` test.
    """

    def __init__(self, config: ErasmusConfig,
                 schedule_tolerance: float = 0.25,
                 allowed_missing: int = 0,
                 sinks: Iterable[ReportSink] = (),
                 store: Optional[StateStore] = None,
                 obs: Optional["Observability"] = None) -> None:
        super().__init__(config, schedule_tolerance=schedule_tolerance,
                         allowed_missing=allowed_missing,
                         store=store if store is not None else MemoryStore())
        self.sinks: List[ReportSink] = list(sinks)
        self.health = FleetHealth()
        self.rounds_completed = 0
        self.obs = obs if obs is not None else _default_obs()
        #: Label for this verifier's per-shard metrics and span paths;
        #: a ShardedFleetVerifier renames its workers "0".."N-1".
        self.obs_shard = "0"
        # A sharded verifier's workers flip this off: their rounds are
        # fractions of one fleet round, which the sharded collect_all
        # records once, merged, instead.
        self._obs_record_rounds = True
        # Per-device precompiled fast verification paths (see
        # DeviceJudge); rebuilt transparently if a re-enrollment
        # replaces a device's key.
        self._judges: Dict[str, DeviceJudge] = {}
        self._closed = False

    @classmethod
    def restore(cls, config: ErasmusConfig, store: StateStore,
                schedule_tolerance: float = 0.25,
                allowed_missing: int = 0,
                sinks: Iterable[ReportSink] = ()) -> "FleetVerifier":
        """Resume a deployment from a store's snapshot and journal.

        Replays the store's last checkpoint plus any journaled reports
        beyond it, so the returned verifier carries the pre-crash
        enrollments (keys, digests *and* last-seen timestamps), the
        aggregate :class:`FleetHealth` and per-device collection times.
        The store stays attached: new state keeps being committed
        through it.
        """
        state = store.restore_state()
        verifier = cls(config, schedule_tolerance=schedule_tolerance,
                       allowed_missing=allowed_missing, sinks=sinks,
                       store=store)
        # Installed directly — these records came *from* the store, so
        # writing them back through it would be a redundant journal round.
        verifier._enrollments = dict(state.enrollments)
        verifier._last_collection_time = dict(state.last_collection_times)
        verifier.health = state.health
        verifier.rounds_completed = state.rounds_completed
        return verifier

    # ------------------------------------------------------------------
    # Enrollment (shared store in BaseVerifier, fleet conveniences here)
    # ------------------------------------------------------------------
    def enroll_device(self, device: ProvisionedDevice, *,
                      re_enroll: bool = False) -> None:
        """Register a provisioned device (key and healthy digest bundled).

        Enrolling an already-enrolled device raises
        :class:`DuplicateEnrollmentError` — overwriting would silently
        reset the device's last-seen timestamp and digest whitelist.
        The check consults the attached store as well as this process's
        enrollments, so re-provisioning over an existing durable state
        directory (instead of :meth:`restore`-ing from it) fails loudly
        rather than erasing the rollback-detecting state.  Pass
        ``re_enroll=True`` to replace the enrollment deliberately
        (e.g. after re-provisioning the physical unit).
        """
        already = self.is_enrolled(device.device_id) or \
            (self.store is not None and
             self.store.has_enrollment(device.device_id))
        if already and not re_enroll:
            raise DuplicateEnrollmentError(
                f"device {device.device_id!r} is already enrolled (in this "
                f"verifier or its attached store); use FleetVerifier."
                f"restore to resume a deployment, or pass re_enroll=True "
                f"to deliberately replace the key, digest whitelist and "
                f"last-seen state")
        if already:
            # The replaced unit's collection history is void along with
            # its last-seen state.
            self._last_collection_time.pop(device.device_id, None)
        self.enroll(device.device_id, device.key, [device.healthy_digest])

    def enrolled_ids(self) -> List[str]:
        """All enrolled device ids, in enrollment order."""
        return list(self._enrollments)

    @property
    def device_count(self) -> int:
        """Number of enrolled devices."""
        return len(self._enrollments)

    def add_sink(self, sink: ReportSink) -> None:
        """Attach one more report sink."""
        self.sinks.append(sink)

    # ------------------------------------------------------------------
    # Single-response verification (verify_collection inherited)
    # ------------------------------------------------------------------
    def _decode_collection(self, device_id: str, payload: Optional[bytes],
                           collection_time: float):
        """Decode one raw transport response.

        Returns ``(report, None)`` when the payload already determines
        the outcome (no answer, undecodable, wrong response type) and
        ``(None, measurements)`` when the measurement history still
        needs judging.
        """
        if payload is None:
            return VerificationReport(
                device_id=device_id, collection_time=collection_time,
                status=DeviceStatus.NO_DATA,
                anomalies=["no response received"]), None
        try:
            response = decode_response(payload)
        except ProtocolDecodeError as exc:
            return VerificationReport(
                device_id=device_id, collection_time=collection_time,
                status=DeviceStatus.TAMPERED,
                anomalies=[f"response could not be decoded: {exc}"]), None
        if isinstance(response, OnDemandResponse):
            return VerificationReport(
                device_id=device_id, collection_time=collection_time,
                status=DeviceStatus.TAMPERED,
                anomalies=["unexpected on-demand response to a plain "
                           "collection"]), None
        return None, list(response.measurements)

    def _verify_payload(self, device_id: str, payload: Optional[bytes],
                        collection_time: float) -> VerificationReport:
        """Judge one raw transport response (``None`` = never answered).

        This is the reference path (per-call MAC dispatch); the
        pipelined round uses :meth:`_verify_payload_fast`, which
        produces identical reports through the precompiled judge.
        """
        enrollment = self._enrollment_for(device_id)
        report, measurements = self._decode_collection(
            device_id, payload, collection_time)
        if report is not None:
            return report
        return self.core.verify_measurements(
            enrollment, measurements, collection_time, expect_nonempty=True)

    def _judge_for(self, device_id: str, enrollment) -> DeviceJudge:
        """The device's cached fast path, rebuilt on key change."""
        judge = self._judges.get(device_id)
        if judge is None or not self.crypto_backend.compare_digests(
                judge.key, enrollment.key):
            judge = self.core.device_judge(enrollment.key)
            self._judges[device_id] = judge
        return judge

    def _verify_payload_fast(self, device_id: str, payload: Optional[bytes],
                             collection_time: float) -> VerificationReport:
        """Fast-path twin of :meth:`_verify_payload` (same reports)."""
        enrollment = self._enrollment_for(device_id)
        report, measurements = self._decode_collection(
            device_id, payload, collection_time)
        if report is not None:
            return report
        return self._judge_for(device_id, enrollment).verify_measurements(
            enrollment, measurements, collection_time, expect_nonempty=True)

    def _commit(self, report: VerificationReport) -> VerificationReport:
        """Advance per-device bookkeeping and stream the report to sinks.

        The report is journaled *before* the enrollment advance so the
        store's write-ahead invariant holds: a crash between the two
        writes replays the report (which re-derives the advance) rather
        than leaving an advanced ``last_seen`` with no report behind it.
        """
        if self.store is not None:
            self.store.append_report(report)
        self._advance_bookkeeping(report)
        self.health.record(report)
        if self.obs.enabled:
            self.obs.report_committed(report)
        for sink in self.sinks:
            sink.emit(report)
        return report

    def apply_worker_batch(self, report_rows: Iterable[Mapping[str, object]],
                           health_row: Mapping[str, object]
                           ) -> List[VerificationReport]:
        """Commit one process-worker task's results, in row order.

        The twin of :meth:`_commit` for verification that happened in a
        worker process: each shipped report row is journaled, advances
        the device's bookkeeping and streams to the sinks exactly as a
        locally-verified report would, and the task's
        :class:`FleetHealth` part folds in through
        :meth:`FleetHealth.merge` — the exact-Fraction accumulator, so
        the merged aggregate is byte-identical to recording every
        report here.
        """
        reports: List[VerificationReport] = []
        obs_enabled = self.obs.enabled
        for row in report_rows:
            report = VerificationReport.from_row(row)
            if self.store is not None:
                self.store.append_report(report)
            self._advance_bookkeeping(report)
            if obs_enabled:
                self.obs.report_committed(report)
            for sink in self.sinks:
                sink.emit(report)
            reports.append(report)
        self.health.merge(FleetHealth.from_row(health_row))
        return reports

    def checkpoint(self) -> None:
        """Fold the verifier's full state into a durable store snapshot.

        Called automatically at the end of every :meth:`collect_all`
        round; call it manually after out-of-band state changes (bulk
        enrollment, digest rollouts) worth persisting immediately.
        Checkpointing the same state twice produces byte-identical
        snapshots, so it is safe to call at any time.
        """
        if self.store is not None:
            self.store.checkpoint(self.health, self._last_collection_time,
                                  rounds_completed=self.rounds_completed)

    def close(self) -> None:
        """Close every attached sink and the store (idempotent).

        Exception-safe: one sink failing never prevents the remaining
        sinks or the store from being released; the first failure is
        re-raised once everything has been attempted, and re-entry is
        a no-op either way.
        """
        if self._closed:
            return
        self._closed = True
        _close_released(self.sinks, self.store)

    # ------------------------------------------------------------------
    # Batched collection rounds
    # ------------------------------------------------------------------
    def _round_prologue(self, transport, collection_time, device_ids,
                        batch_size, k):
        """Validation and setup shared by every round flavour."""
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        engine = getattr(transport, "engine", None)
        if collection_time is None and engine is None:
            raise ValueError(
                "collection_time is required for transports without an "
                "engine clock")
        ids = list(device_ids) if device_ids is not None \
            else self.enrolled_ids()
        for device_id in ids:
            self._enrollment_for(device_id)
        request_bytes = self.create_collect_request(k).encode()
        return engine, ids, request_bytes

    def _finish_round(self, reports: RoundReports, stats: RoundStats,
                      transport, stale_before: int, started: float,
                      checkpoint: bool) -> RoundReports:
        """Stamp the round's stats and fold state into a checkpoint."""
        ended = _time.perf_counter()
        stats.wall_start = started
        stats.wall_end = ended
        stats.wall_seconds = ended - started
        stats.stale_responses_rejected = \
            getattr(transport, "stale_responses_rejected", 0) - stale_before
        reports.stats = stats
        self.rounds_completed += 1
        self.health.record_round(stats)
        if self.obs.enabled and self._obs_record_rounds:
            self.obs.round_finished(stats)
        if checkpoint:
            self.checkpoint()
        return reports

    def collect_all(self, transport: Transport,
                    collection_time: Optional[float] = None,
                    k: Optional[int] = None,
                    device_ids: Optional[Iterable[str]] = None,
                    batch_size: int = DEFAULT_BATCH_SIZE,
                    max_workers: Optional[int] = None,
                    checkpoint: bool = True,
                    pipeline: bool = True,
                    max_inflight_shards: int = DEFAULT_MAX_INFLIGHT_SHARDS
                    ) -> RoundReports:
        """Run one collection round over (a subset of) the fleet.

        A thin synchronous shim: by default it drives the awaitable
        :meth:`collect_all_async` pipeline to completion on a private
        event loop, so wire exchange, verification and sink fan-out
        overlap per shard.  Reports come back as a plain list (with the
        round's :class:`~repro.fleet.sinks.RoundStats` on ``.stats``),
        committed in deterministic device order exactly as the
        historical synchronous implementation did.

        ``pipeline=False`` selects the reference implementation
        instead: strictly sequential batches through the per-call MAC
        dispatch path, each batch barriering on its exchange before any
        verification starts.  It exists as the behavioural yardstick
        (the PR 2 devices/second ceiling) and as the fallback for
        callers that cannot enter an event loop.

        With ``collection_time=None`` (the default) each batch is
        verified at the transport engine's clock *after* its exchange,
        so measurements taken while packets were in flight are never
        misjudged as "from the future".  Pass an explicit time only for
        engineless transports or deliberately retrospective audits.

        Sinks are guarded by a :class:`~repro.fleet.sinks.SinkFanout`:
        a clean round flushes them, a transport failure mid-round
        flushes *and closes* them so already-verified reports reach
        disk before the exception propagates.  Unless ``checkpoint=
        False``, a finished round also folds the verifier state into a
        store snapshot (see :meth:`checkpoint`).
        """
        if pipeline:
            _ensure_no_running_loop("await collect_all_async(...) instead")
            return asyncio.run(self.collect_all_async(
                transport, collection_time, k=k, device_ids=device_ids,
                batch_size=batch_size, max_workers=max_workers,
                checkpoint=checkpoint,
                max_inflight_shards=max_inflight_shards))

        engine, ids, request_bytes = self._round_prologue(
            transport, collection_time, device_ids, batch_size, k)
        stale_before = getattr(transport, "stale_responses_rejected", 0)
        started = _time.perf_counter()
        reports = RoundReports()
        stats = RoundStats()
        try:
            self._run_round_sequential(transport, ids, request_bytes,
                                       collection_time, engine, batch_size,
                                       max_workers, reports, stats)
        except BaseException:
            # The fanout closed the sinks so nothing buffered was lost;
            # drop the closed ones so a retry round on this verifier
            # streams to the survivors instead of raising on dead sinks.
            self.sinks = [sink for sink in self.sinks if not sink.closed]
            raise
        return self._finish_round(reports, stats, transport, stale_before,
                                  started, checkpoint)

    def _run_round_sequential(self, transport: Transport, ids: List[str],
                              request_bytes: bytes,
                              collection_time: Optional[float],
                              engine, batch_size: int,
                              max_workers: Optional[int],
                              reports: List[VerificationReport],
                              stats: RoundStats) -> None:
        """The reference round: sequential batches, inside the fan-out."""
        with SinkFanout(self.sinks):
            for start in range(0, len(ids), batch_size):
                batch = ids[start:start + batch_size]
                stats.shards += 1
                responses = transport.exchange_many(
                    {device_id: request_bytes for device_id in batch})
                self._count_batch(stats, batch, responses)
                batch_time = collection_time if collection_time is not None \
                    else engine.now

                def _verify(device_id: str, batch_time: float = batch_time
                            ) -> VerificationReport:
                    return self._verify_payload(device_id,
                                                responses.get(device_id),
                                                batch_time)

                if max_workers is not None and max_workers > 1 \
                        and len(batch) > 1:
                    with ThreadPoolExecutor(max_workers=max_workers) as pool:
                        batch_reports = list(pool.map(_verify, batch))
                else:
                    batch_reports = [_verify(device_id)
                                     for device_id in batch]
                for report in batch_reports:
                    reports.append(self._commit(report))

    @staticmethod
    def _count_batch(stats: RoundStats, batch: List[str],
                     responses: Mapping[str, Optional[bytes]]) -> None:
        """Fold one exchanged batch into the round's counters."""
        stats.requests_sent += len(batch)
        received = sum(1 for device_id in batch
                       if responses.get(device_id) is not None)
        stats.responses_received += received
        stats.responses_lost += len(batch) - received

    async def collect_all_async(self, transport,
                                collection_time: Optional[float] = None,
                                k: Optional[int] = None,
                                device_ids: Optional[Iterable[str]] = None,
                                batch_size: int = DEFAULT_BATCH_SIZE,
                                max_workers: Optional[int] = None,
                                checkpoint: bool = True,
                                max_inflight_shards: int =
                                DEFAULT_MAX_INFLIGHT_SHARDS) -> RoundReports:
        """One collection round as an asyncio pipeline.

        The round is cut into shards of ``batch_size`` devices; up to
        ``max_inflight_shards`` shards are in flight at once, each
        exchanging over the awaitable transport seam
        (:func:`~repro.fleet.transport.as_async_transport`) and
        verifying its payloads — through the precompiled per-device
        fast path — as soon as *its* exchange settles, while later
        shards' packets are still on the wire.  Commits (store journal,
        health aggregate, sink fan-out) happen in shard order, so the
        report list is deterministic, in the same device order as the
        sequential reference path.

        On an engine-clock transport the overlap is visible in the
        stamps: shards launch together instead of barriering, so a
        shard's ``collection_time`` (engine clock at *its* settlement)
        is generally earlier than the sequential path would have
        stamped it — fresher, never staler.  On engineless or
        in-process transports the reports are identical to
        ``pipeline=False``.

        ``transport`` may be a synchronous :class:`Transport` (adapted
        automatically), an :class:`AsyncTransport`, or anything exposing
        a native ``exchange_many_async`` such as the simulated network —
        whose rounds then genuinely overlap in virtual time.
        ``max_workers`` offloads verification to one shared thread pool
        of that size (useful on multi-core verifiers); by default
        verification runs inline between awaits.
        """
        if max_inflight_shards <= 0:
            raise ValueError("max_inflight_shards must be positive")
        atransport = as_async_transport(transport)
        engine, ids, request_bytes = self._round_prologue(
            atransport, collection_time, device_ids, batch_size, k)
        shards = [ids[start:start + batch_size]
                  for start in range(0, len(ids), batch_size)]
        stale_before = getattr(atransport, "stale_responses_rejected", 0)
        started = _time.perf_counter()
        reports = RoundReports()
        stats = RoundStats(shards=len(shards))

        # One pool for the whole round: per-shard pools would multiply
        # the caller's thread cap by the number of in-flight shards and
        # re-pay pool construction per shard.
        pool = ThreadPoolExecutor(max_workers=max_workers) \
            if max_workers is not None and max_workers > 1 else None

        obs = self.obs
        obs_enabled = obs.enabled
        round_span = None

        async def _collect_shard(shard: List[str], batch_index: int):
            shard_cm = obs.trace_shard(round_span, batch_index,
                                       devices=len(shard)) \
                if obs_enabled else nullcontext()
            with shard_cm as shard_span:
                responses = await atransport.exchange_many(
                    {device_id: request_bytes for device_id in shard})
                shard_time = collection_time \
                    if collection_time is not None else engine.now
                verify = self._verify_payload_fast
                if obs_enabled:
                    # Wall time goes only to the histogram — spans carry
                    # virtual time, keeping traces byte-reproducible.
                    observe = obs.verify_observer(self.obs_shard).observe
                    perf = _time.perf_counter

                    def _verify_observed(device_id: str
                                         ) -> VerificationReport:
                        verify_started = perf()
                        report = verify(device_id,
                                        responses.get(device_id),
                                        shard_time)
                        observe(perf() - verify_started)
                        obs.record_device_verify(shard_span, device_id,
                                                 report.status.value)
                        return report

                    if pool is not None and len(shard) > 1:
                        loop = asyncio.get_running_loop()
                        shard_reports = list(await asyncio.gather(*[
                            loop.run_in_executor(pool, _verify_observed,
                                                 device_id)
                            for device_id in shard]))
                    else:
                        shard_reports = [_verify_observed(device_id)
                                         for device_id in shard]
                    if shard_span is not None:
                        received = sum(
                            1 for device_id in shard
                            if responses.get(device_id) is not None)
                        shard_span.attrs["received"] = received
                        shard_span.attrs["lost"] = len(shard) - received
                elif pool is not None and len(shard) > 1:
                    loop = asyncio.get_running_loop()
                    shard_reports = list(await asyncio.gather(*[
                        loop.run_in_executor(pool, verify, device_id,
                                             responses.get(device_id),
                                             shard_time)
                        for device_id in shard]))
                else:
                    shard_reports = [
                        verify(device_id, responses.get(device_id),
                               shard_time)
                        for device_id in shard]
            return responses, shard_reports

        in_flight: List[asyncio.Task] = []
        next_shard = 0

        def _keep_window_full() -> None:
            nonlocal next_shard
            while next_shard < len(shards) and \
                    len(in_flight) < max_inflight_shards:
                in_flight.append(asyncio.ensure_future(
                    _collect_shard(shards[next_shard], next_shard)))
                next_shard += 1

        if obs_enabled:
            obs.rounds_inflight.inc()
        round_cm = obs.trace_round(self.rounds_completed + 1,
                                   worker=self.obs_shard,
                                   devices=len(ids),
                                   shards=len(shards)) \
            if obs_enabled else nullcontext()
        current: Optional[asyncio.Task] = None
        try:
            with round_cm as round_span:
                with SinkFanout(self.sinks):
                    _keep_window_full()
                    shard_index = 0
                    while in_flight:
                        current = in_flight.pop(0)
                        responses, shard_reports = await current
                        current = None
                        _keep_window_full()
                        self._count_batch(stats, shards[shard_index],
                                          responses)
                        shard_index += 1
                        for report in shard_reports:
                            reports.append(self._commit(report))
                if round_span is not None:
                    round_span.attrs["reports"] = len(reports)
        except BaseException:
            # Include the task being awaited when the failure struck —
            # e.g. an external cancellation (asyncio.wait_for timeout)
            # lands mid-await, and the popped task would otherwise keep
            # driving the shared transport/engine as an orphan.
            leftovers = ([current] if current is not None else []) + in_flight
            for task in leftovers:
                task.cancel()
            for task in leftovers:
                try:
                    await task
                except BaseException:
                    pass  # the primary failure is what propagates
            self.sinks = [sink for sink in self.sinks if not sink.closed]
            raise
        finally:
            if obs_enabled:
                obs.rounds_inflight.dec()
            if pool is not None:
                pool.shutdown(wait=True)
        return self._finish_round(reports, stats, atransport, stale_before,
                                  started, checkpoint)

    async def collect_all_process_async(self, transport, pool: WorkerPool,
                                        worker_index: int,
                                        collection_time: Optional[float]
                                        = None,
                                        k: Optional[int] = None,
                                        device_ids: Optional[Iterable[str]]
                                        = None,
                                        batch_size: int = DEFAULT_BATCH_SIZE,
                                        checkpoint: bool = True,
                                        max_inflight_shards: int =
                                        DEFAULT_MAX_INFLIGHT_SHARDS
                                        ) -> RoundReports:
        """One collection round with verification in a worker process.

        The pipeline shape of :meth:`collect_all_async` — batches of
        ``batch_size`` devices, up to ``max_inflight_shards`` in flight
        — but each settled batch is shipped to ``pool`` worker
        ``worker_index`` as a binary task (payloads plus current
        ``last_seen`` snapshots) instead of being verified inline.  The
        worker returns report rows and one :class:`FleetHealth` part
        per task; :meth:`apply_worker_batch` commits them here in batch
        order, so stores, sinks and bookkeeping see exactly what local
        verification would have produced.

        The caller must have spawned the worker and synced enrollments
        (see :meth:`WorkerPool.ensure_worker` /
        :meth:`WorkerPool.sync_enrollments`).  If the worker crashes
        mid-round, every batch still outstanding on it completes with
        its devices reported ``NO_DATA`` and counted as lost; the
        worker is *not* respawned mid-round — the next round's
        ``ensure_worker`` brings it back.  Per-device span traces are
        not recorded in process mode (the verify happens in another
        process); verify latency still feeds the shard histogram from
        worker-measured timings.
        """
        if max_inflight_shards <= 0:
            raise ValueError("max_inflight_shards must be positive")
        atransport = as_async_transport(transport)
        engine, ids, request_bytes = self._round_prologue(
            atransport, collection_time, device_ids, batch_size, k)
        shards = [ids[start:start + batch_size]
                  for start in range(0, len(ids), batch_size)]
        stale_before = getattr(atransport, "stale_responses_rejected", 0)
        started = _time.perf_counter()
        reports = RoundReports()
        stats = RoundStats(shards=len(shards))
        obs = self.obs
        obs_enabled = obs.enabled
        observe = obs.verify_observer(self.obs_shard).observe \
            if obs_enabled else None

        async def _collect_shard(shard: List[str]):
            responses = await atransport.exchange_many(
                {device_id: request_bytes for device_id in shard})
            shard_time = collection_time \
                if collection_time is not None else engine.now
            entries = [(device_id, responses.get(device_id),
                        self._enrollments[device_id].last_seen)
                       for device_id in shard]
            try:
                body = await asyncio.wrap_future(pool.submit_task(
                    worker_index, shard_time, entries,
                    want_timings=obs_enabled))
            except WorkerCrashed:
                return responses, shard_time, None, None
            rows, health_row, timings = decode_result(body)
            return responses, shard_time, (rows, health_row), timings

        in_flight: List[asyncio.Task] = []
        next_shard = 0

        def _keep_window_full() -> None:
            nonlocal next_shard
            while next_shard < len(shards) and \
                    len(in_flight) < max_inflight_shards:
                in_flight.append(asyncio.ensure_future(
                    _collect_shard(shards[next_shard])))
                next_shard += 1

        if obs_enabled:
            obs.rounds_inflight.inc()
        current: Optional[asyncio.Task] = None
        try:
            with SinkFanout(self.sinks):
                _keep_window_full()
                shard_index = 0
                while in_flight:
                    current = in_flight.pop(0)
                    responses, shard_time, outcome, timings = await current
                    current = None
                    _keep_window_full()
                    shard = shards[shard_index]
                    shard_index += 1
                    if outcome is None:
                        # The worker died holding this batch: the
                        # responses are unverifiable, so the devices
                        # are reported lost — never guessed healthy.
                        self._count_batch(stats, shard, {})
                        for device_id in shard:
                            reports.append(self._commit(VerificationReport(
                                device_id=device_id,
                                collection_time=shard_time,
                                status=DeviceStatus.NO_DATA,
                                anomalies=["shard worker crashed; response "
                                           "discarded"])))
                        continue
                    self._count_batch(stats, shard, responses)
                    rows, health_row = outcome
                    reports.extend(self.apply_worker_batch(rows, health_row))
                    if observe is not None and timings is not None:
                        for timing in timings:
                            observe(timing)
        except BaseException:
            leftovers = ([current] if current is not None else []) + in_flight
            for task in leftovers:
                task.cancel()
            for task in leftovers:
                try:
                    await task
                except BaseException:
                    pass  # the primary failure is what propagates
            self.sinks = [sink for sink in self.sinks if not sink.closed]
            raise
        finally:
            if obs_enabled:
                obs.rounds_inflight.dec()
        return self._finish_round(reports, stats, atransport, stale_before,
                                  started, checkpoint)


# ----------------------------------------------------------------------
# Sharded verification
# ----------------------------------------------------------------------

class _LockedStore(StateStore):
    """Serialize concurrent access to one shared :class:`StateStore`.

    Shard workers write enrollment advances and report journal entries
    from their own threads; the backends (JSONL stream, SQLite
    connection) are single-writer, so every call takes one re-entrant
    lock.  Contention is negligible — writes are tiny compared to
    verification work — and the payoff is that a sharded verifier's
    durable state is the *same single store* a plain verifier would
    produce.
    """

    def __init__(self, inner: StateStore) -> None:
        self.inner = inner
        self._lock = named_lock("fleet.store", kind="rlock")

    def save_enrollment(self, enrollment) -> None:
        with self._lock:
            self.inner.save_enrollment(enrollment)

    def append_report(self, report) -> None:
        with self._lock:
            self.inner.append_report(report)

    def checkpoint(self, health, last_collection_times,
                   rounds_completed: int = 0) -> None:
        with self._lock:
            self.inner.checkpoint(health, last_collection_times,
                                  rounds_completed=rounds_completed)

    def has_enrollment(self, device_id: str) -> bool:
        with self._lock:
            return self.inner.has_enrollment(device_id)

    def restore_state(self):
        with self._lock:
            return self.inner.restore_state()

    def device_history(self, device_id: str, limit: Optional[int] = None):
        with self._lock:
            return self.inner.device_history(device_id, limit=limit)

    def state_rows(self):
        with self._lock:
            return self.inner.state_rows()

    def flush(self) -> None:
        with self._lock:
            self.inner.flush()

    def close(self) -> None:
        with self._lock:
            self.inner.close()


class ShardedFleetVerifier:
    """N shard workers draining one fleet concurrently, one merged view.

    The fleet's devices are assigned round-robin to ``shards`` inner
    :class:`FleetVerifier` workers.  A collection round runs every
    worker's :meth:`FleetVerifier.collect_all_async` pipeline over its
    own shard:

    * on a transport that allows concurrent exchanges (in-process), the
      workers run on a thread pool — on a multi-core verifier host the
      shards' crypto genuinely overlaps;
    * on a single-threaded engine transport (the simulated network),
      the workers share one event loop instead, their rounds
      overlapping in virtual time through the network's per-round
      settlement tracking.

    Workers share one :class:`~repro.store.StateStore` (behind a lock),
    so enrollments and the report journal land in a single durable
    state, and their per-shard :class:`FleetHealth` aggregates merge —
    exactly, see :meth:`FleetHealth.merged` — into the fleet-wide
    :attr:`health`.  Reports are re-ordered into enrollment order
    before hitting the sinks, so on a clean round the sink output is
    deterministic and byte-identical to a single verifier's.  The
    ordering requirement means sinks are fed *after* the workers have
    committed: if a sink fails mid-emit, this round's reports are
    already journaled and folded into health (durability first) and
    only the sink stream is short — whereas a single verifier, which
    interleaves commit and emit per report, stops both at the failure
    point.

    ``worker_mode`` selects how shard rounds execute:

    * ``"loop"`` (the default) — all workers' async pipelines overlap
      cooperatively on one event loop.  On CPython this is the fast
      choice for ERASMUS verification, whose hot path is pure Python
      plus small-buffer C crypto that never releases the GIL: a thread
      pool would buy lock contention, not parallelism.
    * ``"thread"`` — one OS thread (and event loop) per worker,
      requiring a transport that allows concurrent exchanges.  The
      seam for workloads that do drop the GIL (large measured regions,
      native crypto offload) or free-threaded builds.
    * ``"process"`` — one spawned worker *process* per shard (see
      :mod:`repro.fleet.workers`): the HMAC-heavy verify loop runs
      outside this process's GIL entirely, fed over binary pipes with
      zero-copy payload views on the worker side.  The parent keeps
      the shared store, sinks and enrollments; workers ship report
      rows and exact :class:`FleetHealth` parts home, so the merged
      health stays byte-identical to ``"loop"`` mode.  Workers spawn
      lazily on the first round, re-sync enrollments only when keys or
      whitelists change, and a crashed worker's outstanding batches
      finish as lost devices before it rejoins the next round.
    """

    def __init__(self, config: ErasmusConfig, shards: int = 4,
                 schedule_tolerance: float = 0.25,
                 allowed_missing: int = 0,
                 sinks: Iterable[ReportSink] = (),
                 store: Optional[StateStore] = None,
                 worker_mode: str = "loop",
                 obs: Optional["Observability"] = None) -> None:
        if shards < 1:
            raise ValueError("a sharded verifier needs at least one shard")
        if worker_mode not in ("loop", "thread", "process"):
            raise ValueError(f"unknown worker mode {worker_mode!r}; "
                             f"expected 'loop', 'thread' or 'process'")
        self.worker_mode = worker_mode
        self.config = config
        self.shards = shards
        self.schedule_tolerance = schedule_tolerance
        self.allowed_missing = allowed_missing
        self.sinks: List[ReportSink] = list(sinks)
        self.store = store
        self.obs = obs if obs is not None else _default_obs()
        # The lock wraps *around* an ObservedStore (when Fleet.provision
        # wrapped one in), so recorded store latency stays the
        # backend's own rather than lock-wait time.
        shared = _LockedStore(store) if store is not None else None
        self._shared_store = shared
        self.workers: List[FleetVerifier] = [
            FleetVerifier(config, schedule_tolerance=schedule_tolerance,
                          allowed_missing=allowed_missing, sinks=(),
                          store=shared, obs=self.obs)
            for _ in range(shards)]
        for index, worker in enumerate(self.workers):
            # Distinct span/metric shard labels per worker; the fleet
            # round is recorded once, merged, by collect_all below.
            worker.obs_shard = str(index)
            worker._obs_record_rounds = False
        self._order: List[str] = []
        self._shard_of: Dict[str, int] = {}
        self.rounds_completed = 0
        self._round_stats: List[RoundStats] = []
        # Process-mode machinery: the pool spawns lazily on the first
        # round; _worker_sync caches (generation, enrollment epoch) per
        # slot so enrollment mirrors re-ship only when material changed
        # or the slot respawned.
        self._pool: Optional[WorkerPool] = None
        self._worker_sync: List[Optional[tuple]] = [None] * shards
        self._closed = False

    @property
    def worker_pool(self) -> Optional[WorkerPool]:
        """The process pool, once the first process-mode round spawned it."""
        return self._pool

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(self.shards, config=self.config,
                                    schedule_tolerance=self.schedule_tolerance,
                                    allowed_missing=self.allowed_missing,
                                    obs=self.obs)
        return self._pool

    def warm_up(self) -> None:
        """Spawn worker processes and ship enrollments ahead of a round.

        Process mode pays its one-time costs — spawning the workers
        (interpreter + import per process) and shipping each shard's
        enrollment mirror — lazily inside the first ``collect_all``.
        Call this first to take that cold start out of the first
        round's latency (benchmarks measure steady-state rounds this
        way).  No-op for the in-process worker modes.
        """
        if self.worker_mode != "process":
            return

        async def _warm() -> None:
            await self._sync_worker_processes(self._ensure_pool())

        asyncio.run(_warm())

    async def _sync_worker_processes(self, pool: WorkerPool) -> None:
        """Spawn/respawn slots and re-ship changed enrollment mirrors."""
        waits = []
        indices = []
        for index, worker in enumerate(self.workers):
            generation = pool.ensure_worker(index)
            key = (generation, worker._enrollment_epoch)
            if self._worker_sync[index] != key:
                rows = [worker._enrollments[device_id].to_row()
                        for device_id in worker.enrolled_ids()]
                waits.append(asyncio.wrap_future(
                    pool.sync_enrollments(index, rows)))
                indices.append(index)
                self._worker_sync[index] = key
        if not waits:
            return
        results = await asyncio.gather(*waits, return_exceptions=True)
        for index, result in zip(indices, results):
            if isinstance(result, BaseException):
                # The slot died before acking; forget the sync so the
                # next round re-ships after the respawn.  This round's
                # tasks to it fail fast as WorkerCrashed (lost devices).
                self._worker_sync[index] = None

    # ------------------------------------------------------------------
    # Enrollment
    # ------------------------------------------------------------------
    def enroll_device(self, device: ProvisionedDevice, *,
                      re_enroll: bool = False) -> None:
        """Enroll one device on its (stable, round-robin) shard worker."""
        existing = self._shard_of.get(device.device_id)
        shard = existing if existing is not None \
            else len(self._order) % self.shards
        self.workers[shard].enroll_device(device, re_enroll=re_enroll)
        if existing is None:
            self._shard_of[device.device_id] = shard
            self._order.append(device.device_id)

    def enrolled_ids(self) -> List[str]:
        """All enrolled device ids, in fleet-wide enrollment order."""
        return list(self._order)

    @property
    def device_count(self) -> int:
        """Number of enrolled devices across all shards."""
        return len(self._order)

    def is_enrolled(self, device_id: str) -> bool:
        """True when the device is enrolled on any shard."""
        return device_id in self._shard_of

    def shard_of(self, device_id: str) -> int:
        """Index of the shard worker owning one device."""
        try:
            return self._shard_of[device_id]
        except KeyError as exc:
            raise KeyError(f"device {device_id!r} is not enrolled") from exc

    def worker_for(self, device_id: str) -> FleetVerifier:
        """The shard worker owning one device."""
        return self.workers[self.shard_of(device_id)]

    def last_collection_time(self, device_id: str) -> Optional[float]:
        """Time of the device's most recent data-bearing collection."""
        if device_id not in self._shard_of:
            return None
        return self.worker_for(device_id).last_collection_time(device_id)

    def add_sink(self, sink: ReportSink) -> None:
        """Attach one more fleet-level report sink."""
        self.sinks.append(sink)

    # ------------------------------------------------------------------
    # Merged views
    # ------------------------------------------------------------------
    @property
    def health(self) -> FleetHealth:
        """Fleet-wide aggregate merged from the per-shard aggregates."""
        merged = FleetHealth.merged(worker.health for worker in self.workers)
        merged.round_stats = list(self._round_stats)
        return merged

    def checkpoint(self) -> None:
        """Snapshot the merged state into the shared store.

        Goes through the :class:`_LockedStore` wrapper, never the raw
        backend: a straggling shard worker may still be appending report
        rows when a pipelined round checkpoints, and the JSONL/SQLite
        backends are single-writer.
        """
        if self._shared_store is None:
            return
        times: Dict[str, float] = {}
        for worker in self.workers:
            times.update(worker._last_collection_time)
        self._shared_store.checkpoint(
            self.health, times, rounds_completed=self.rounds_completed)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def collect_all(self, transport,
                    collection_time: Optional[float] = None,
                    k: Optional[int] = None,
                    batch_size: int = DEFAULT_BATCH_SIZE,
                    max_workers: Optional[int] = None,
                    checkpoint: bool = True,
                    pipeline: bool = True,
                    max_inflight_shards: int = DEFAULT_MAX_INFLIGHT_SHARDS
                    ) -> RoundReports:
        """One fleet-wide round: all shard workers drain concurrently.

        ``max_workers`` and ``pipeline`` are accepted for facade
        compatibility with :meth:`FleetVerifier.collect_all`; shard
        workers are themselves the concurrency mechanism, and every
        worker always runs its async pipeline.
        """
        del max_workers, pipeline  # shard workers are the parallelism
        _ensure_no_running_loop(
            "drive sharded rounds from synchronous code — the shard "
            "workers run their own event loops")
        if collection_time is None and \
                getattr(transport, "engine", None) is None:
            raise ValueError(
                "collection_time is required for transports without an "
                "engine clock")
        shard_ids: List[List[str]] = [[] for _ in range(self.shards)]
        for device_id in self._order:
            shard_ids[self._shard_of[device_id]].append(device_id)

        stale_before = getattr(transport, "stale_responses_rejected", 0)
        started = _time.perf_counter()

        def _worker_args(index: int) -> Dict[str, object]:
            return dict(collection_time=collection_time, k=k,
                        device_ids=shard_ids[index], batch_size=batch_size,
                        checkpoint=False,
                        max_inflight_shards=max_inflight_shards)

        threaded = self.worker_mode == "thread" and self.shards > 1
        if threaded and not getattr(transport, "concurrent_collections",
                                    False):
            raise ValueError(
                f"transport {getattr(transport, 'name', transport)!r} does "
                f"not support concurrent exchanges from thread workers; "
                f"use worker_mode='loop' (the shards then overlap on one "
                f"event loop) or an in-process transport")
        if threaded:
            def _run_worker(index: int) -> RoundReports:
                return asyncio.run(self.workers[index].collect_all_async(
                    transport, **_worker_args(index)))

            with ThreadPoolExecutor(max_workers=self.shards) as pool:
                futures = [pool.submit(_run_worker, index)
                           for index in range(self.shards)]
                worker_reports = [future.result() for future in futures]
        elif self.worker_mode == "process":
            # Verification runs in the pool's worker processes; this
            # process only drives exchanges and applies commit batches,
            # all shards overlapping on one event loop.
            async def _gather_process() -> List[RoundReports]:
                worker_pool = self._ensure_pool()
                await self._sync_worker_processes(worker_pool)
                return list(await asyncio.gather(*[
                    self.workers[index].collect_all_process_async(
                        transport, worker_pool, index, **_worker_args(index))
                    for index in range(self.shards)]))

            worker_reports = asyncio.run(_gather_process())
        else:
            # Cooperative mode: every worker's pipeline shares one
            # event loop, overlapping through the same awaitable
            # transport seam (and in virtual time on the simulated
            # network).
            async def _gather() -> List[RoundReports]:
                return list(await asyncio.gather(*[
                    self.workers[index].collect_all_async(
                        transport, **_worker_args(index))
                    for index in range(self.shards)]))

            worker_reports = asyncio.run(_gather())

        by_device = {report.device_id: report
                     for shard_reports in worker_reports
                     for report in shard_reports}
        reports = RoundReports(by_device[device_id]
                               for device_id in self._order)
        try:
            with SinkFanout(self.sinks):
                for report in reports:
                    for sink in self.sinks:
                        sink.emit(report)
        except BaseException:
            # The fanout closed the sinks; drop the dead ones so a
            # retry round streams to the survivors (mirrors
            # FleetVerifier.collect_all).
            self.sinks = [sink for sink in self.sinks if not sink.closed]
            raise

        stats = RoundStats.merged([r.stats for r in worker_reports])
        # Fleet-level figures: the workers' wall clocks overlap, and
        # their stale-counter samples race, so both are re-measured here.
        ended = _time.perf_counter()
        stats.wall_start = started
        stats.wall_end = ended
        stats.wall_seconds = ended - started
        stats.stale_responses_rejected = \
            getattr(transport, "stale_responses_rejected", 0) - stale_before
        reports.stats = stats
        self._round_stats.append(stats)
        self.rounds_completed += 1
        if self.obs.enabled:
            self.obs.round_finished(stats)
        if checkpoint:
            self.checkpoint()
        return reports

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close fleet-level sinks, the shared store and any worker pool
        (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.close()
        _close_released(self.sinks, self.store)


# ----------------------------------------------------------------------
# Facade
# ----------------------------------------------------------------------

#: Transport factories selectable by name in :meth:`Fleet.provision`.
TRANSPORT_FACTORIES: Dict[str, Callable[..., Transport]] = {
    "in-process": InProcessTransport,
    "simulated-network": SimulatedNetworkTransport,
    "swarm-relay": SwarmRelayTransport,
}
TRANSPORT_FACTORIES["socket"] = SocketTransport
#: Convenience aliases.
TRANSPORT_FACTORIES["network"] = SimulatedNetworkTransport
TRANSPORT_FACTORIES["swarm"] = SwarmRelayTransport


class Fleet:
    """A provisioned fleet: devices, transport, engine and verifier service.

    Build one with :meth:`provision`; then alternate ``run_until`` (let
    provers self-measure on their schedules) with ``collect_all``
    (verify everyone's history).  The same scenario code runs unchanged
    over any transport.
    """

    def __init__(self, profile: DeviceProfile,
                 verifier: Union[FleetVerifier, ShardedFleetVerifier],
                 transport: Transport, engine: SimulationEngine,
                 devices: Dict[str, ProvisionedDevice],
                 obs: Optional["Observability"] = None) -> None:
        self.profile = profile
        self.verifier = verifier
        self.transport = transport
        self.engine = engine
        self._devices = devices
        self.obs = obs if obs is not None else _default_obs()

    @classmethod
    def provision(cls, profile: DeviceProfile, count: int, *,
                  master_secret: bytes,
                  transport: Union[str, Transport,
                                   Callable[[SimulationEngine], Transport]]
                  = "in-process",
                  engine: Optional[SimulationEngine] = None,
                  sinks: Iterable[ReportSink] = (),
                  store: Optional[StateStore] = None,
                  schedule_tolerance: float = 0.25,
                  allowed_missing: int = 0,
                  name_prefix: str = "dev",
                  stagger: bool = True,
                  start_time: float = 0.0,
                  transport_options: Optional[Mapping[str, object]] = None,
                  shards: Optional[int] = None,
                  worker_mode: str = "loop",
                  obs: Optional["Observability"] = None
                  ) -> "Fleet":
        """Provision ``count`` devices from one profile, ready to attest.

        Each device gets a key derived from ``master_secret``, an imaged
        architecture, a prover attached to the shared engine (start
        times staggered across one measurement interval unless
        ``stagger=False``, so the fleet does not measure in lockstep),
        a transport registration and a verifier enrollment.

        ``transport`` may be a factory name from
        :data:`TRANSPORT_FACTORIES`, a ready :class:`Transport`
        instance, or a callable receiving the engine.  ``store`` backs
        the verifier with a :class:`repro.store.StateStore` so the
        deployment can be resumed after a verifier restart (see
        :meth:`FleetVerifier.restore`).  ``shards`` provisions the
        fleet onto a :class:`ShardedFleetVerifier` with that many
        concurrent shard workers instead of a single
        :class:`FleetVerifier`; ``worker_mode`` then selects how the
        shard rounds execute (``"loop"``, ``"thread"`` or
        ``"process"`` — see :class:`ShardedFleetVerifier`).

        ``obs`` threads one :class:`repro.obs.Observability` through
        the whole stack: its clock binds to the fleet engine, the
        store is wrapped in a latency-recording interposition, the
        transport's packet events are hooked, the streaming SLO sink
        (when rules are configured) joins the report fanout, and the
        verifier records per-device/per-round metrics and span traces.
        ``fleet.obs.serve()`` then exposes everything over HTTP.
        """
        if count <= 0:
            raise ValueError("a fleet needs at least one device")
        if worker_mode != "loop" and shards is None:
            raise ValueError("worker_mode requires shards")
        if engine is None:
            engine = SimulationEngine()
        if obs is None:
            obs = _default_obs()
        if obs.enabled:
            obs.bind_engine(engine)
            # The default MemoryStore is materialized here (instead of
            # inside the verifier) so journal/checkpoint latency is
            # observed even without an explicit durable backend.
            store = obs.wrap_store(
                store if store is not None else MemoryStore())
        options = dict(transport_options or {})
        if isinstance(transport, str):
            try:
                factory = TRANSPORT_FACTORIES[transport]
            except KeyError as exc:
                known = ", ".join(sorted(TRANSPORT_FACTORIES))
                raise ValueError(f"unknown transport {transport!r}; "
                                 f"known: {known}") from exc
            built_transport = factory(engine, **options)
        elif isinstance(transport, Transport):
            if options:
                # A ready instance cannot absorb construction options;
                # dropping them silently would run the wrong network.
                raise ValueError(
                    "transport_options cannot be combined with a ready "
                    f"Transport instance (got {sorted(options)})")
            built_transport = transport
        else:
            built_transport = transport(engine, **options)

        round_sinks = list(sinks)
        if obs.enabled:
            obs.attach_transport(built_transport)
            slo_sink = obs.health_sink()
            if slo_sink is not None and slo_sink not in round_sinks:
                round_sinks.append(slo_sink)
        if shards is not None:
            verifier: Union[FleetVerifier, ShardedFleetVerifier] = \
                ShardedFleetVerifier(profile.config, shards=shards,
                                     schedule_tolerance=schedule_tolerance,
                                     allowed_missing=allowed_missing,
                                     sinks=round_sinks, store=store,
                                     worker_mode=worker_mode, obs=obs)
        else:
            verifier = FleetVerifier(profile.config,
                                     schedule_tolerance=schedule_tolerance,
                                     allowed_missing=allowed_missing,
                                     sinks=round_sinks, store=store,
                                     obs=obs)
        devices: Dict[str, ProvisionedDevice] = {}
        interval = profile.config.measurement_interval
        for index in range(count):
            device_id = f"{name_prefix}-{index:04d}"
            device = profile.provision(device_id,
                                       master_secret=master_secret)
            offset = start_time
            if stagger:
                offset += (index / count) * interval
            device.prover.attach(engine, start_time=offset)
            built_transport.register(device)
            verifier.enroll_device(device)
            devices[device_id] = device
        if obs.enabled:
            # inc, not set: two fleets sharing one obs should add up.
            obs.devices_enrolled.inc(count)
        return cls(profile=profile, verifier=verifier,
                   transport=built_transport, engine=engine,
                   devices=devices, obs=obs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def device_count(self) -> int:
        """Number of provisioned devices."""
        return len(self._devices)

    def device_ids(self) -> List[str]:
        """All device ids, in provisioning order."""
        return list(self._devices)

    def device(self, device_id: str) -> ProvisionedDevice:
        """Look up one provisioned device."""
        try:
            return self._devices[device_id]
        except KeyError as exc:
            raise KeyError(f"no device {device_id!r} in this fleet") from exc

    def devices(self) -> List[ProvisionedDevice]:
        """All provisioned devices, in provisioning order."""
        return list(self._devices.values())

    @property
    def health(self) -> FleetHealth:
        """The verifier's running fleet-health aggregate."""
        return self.verifier.health

    @property
    def now(self) -> float:
        """Current virtual time of the shared engine."""
        return self.engine.now

    # ------------------------------------------------------------------
    # Operation
    # ------------------------------------------------------------------
    def run_until(self, time: float) -> int:
        """Advance the simulation (provers self-measure on schedule)."""
        return self.engine.run(until=time)

    def collect_all(self, k: Optional[int] = None,
                    collection_time: Optional[float] = None,
                    batch_size: int = DEFAULT_BATCH_SIZE,
                    max_workers: Optional[int] = None,
                    checkpoint: bool = True,
                    pipeline: bool = True,
                    max_inflight_shards: int = DEFAULT_MAX_INFLIGHT_SHARDS
                    ) -> RoundReports:
        """Run one collection round over the whole fleet.

        ``collection_time=None`` stamps each batch at the engine clock
        after its exchange (see :meth:`FleetVerifier.collect_all`).
        """
        return self.verifier.collect_all(
            self.transport, collection_time, k=k,
            batch_size=batch_size, max_workers=max_workers,
            checkpoint=checkpoint, pipeline=pipeline,
            max_inflight_shards=max_inflight_shards)

    async def collect_all_async(self, k: Optional[int] = None,
                                collection_time: Optional[float] = None,
                                batch_size: int = DEFAULT_BATCH_SIZE,
                                max_workers: Optional[int] = None,
                                checkpoint: bool = True,
                                max_inflight_shards: int =
                                DEFAULT_MAX_INFLIGHT_SHARDS) -> RoundReports:
        """Awaitable :meth:`collect_all` — the fleet's async pipeline.

        Only available on single-verifier fleets;
        :class:`ShardedFleetVerifier` rounds already run their own
        loops (or threads) and are driven through the synchronous
        :meth:`collect_all`.
        """
        if not isinstance(self.verifier, FleetVerifier):
            raise TypeError("collect_all_async requires a single "
                            "FleetVerifier; sharded fleets drive their own "
                            "event loops through collect_all")
        return await self.verifier.collect_all_async(
            self.transport, collection_time, k=k,
            batch_size=batch_size, max_workers=max_workers,
            checkpoint=checkpoint, max_inflight_shards=max_inflight_shards)

    def close(self) -> None:
        """Close every attached report sink and the state store.

        Delegates to the verifier's own ``close``, which is idempotent
        and exception-safe: closing twice (an explicit call followed by
        context-manager exit, say) is a no-op, sinks that a failed
        round already closed are skipped harmlessly, and one sink
        failing to close never prevents the remaining sinks or the
        store from being released — the first failure is re-raised once
        everything has been attempted.
        """
        self.verifier.close()

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
