"""Benchmark: fleet-collection throughput (devices/second, 1,000 devices).

Runs full fleet rounds — provision, self-measurement schedule,
``collect_all``, verification — through :mod:`repro.fleet` and records
the devices/second rates in the benchmark's ``extra_info`` so
successive scaling PRs have a fixed yardstick.

Three collection paths are compared on identical fleets:

* ``sync-baseline`` — the strictly sequential reference round
  (``pipeline=False``), the PR 2 devices/second ceiling;
* ``async`` — the pipelined ``collect_all`` default (awaitable
  transport seam plus the precompiled per-device verification path);
* ``sharded`` — :class:`repro.fleet.ShardedFleetVerifier` draining the
  fleet across four shard workers.

The async and sharded paths must beat the synchronous baseline on the
same 1,000-device fleet; that is this refactor's acceptance bar.
"""

import pytest

from repro.experiments import fleet_collection

FLEET_SIZE = 1000


def test_fleet_round_throughput_1000_devices(benchmark):
    row = benchmark.pedantic(
        fleet_collection.run_round,
        args=("in-process", FLEET_SIZE),
        rounds=1, iterations=1)
    assert row["reports"] == FLEET_SIZE
    assert row["healthy"] == FLEET_SIZE
    benchmark.extra_info["devices_per_second"] = row["devices_per_second"]
    benchmark.extra_info["collect_devices_per_second"] = \
        row["collect_devices_per_second"]
    # A full 1,000-device round should comfortably beat one device/ms;
    # the bound is loose so CI machines of any speed pass it.
    assert row["devices_per_second"] > 50


def test_async_and_sharded_beat_sync_baseline(benchmark):
    rows = benchmark.pedantic(
        fleet_collection.run_concurrency_comparison,
        kwargs=dict(device_count=FLEET_SIZE, repeats=3),
        rounds=1, iterations=1)
    by_mode = {row["mode"]: row for row in rows}
    for mode, row in by_mode.items():
        benchmark.extra_info[f"{mode}_devices_per_second"] = \
            row["devices_per_second"]
        benchmark.extra_info[f"{mode}_collect_devices_per_second"] = \
            row["collect_devices_per_second"]
    assert all(row["reports"] == FLEET_SIZE for row in rows)
    assert all(row["healthy"] == FLEET_SIZE for row in rows)
    assert all(row["requests_sent"] == FLEET_SIZE for row in rows)
    assert all(row["responses_lost"] == 0 for row in rows)
    # The refactor's acceptance bar: the pipelined and sharded paths
    # push past the synchronous single-process ceiling on an identical
    # fleet (best-of-3 rounds each, so a stray scheduler hiccup on a
    # busy CI machine cannot decide the comparison).
    baseline = by_mode["sync-baseline"]["collect_devices_per_second"]
    assert by_mode["async"]["collect_devices_per_second"] > baseline
    assert by_mode["sharded"]["collect_devices_per_second"] > baseline


@pytest.mark.parametrize("transport", ["simulated-network", "swarm-relay"])
def test_fleet_round_networked_transports(benchmark, transport):
    row = benchmark.pedantic(
        fleet_collection.run_round,
        args=(transport, 200),
        rounds=1, iterations=1)
    assert row["reports"] == 200
    assert row["healthy"] == 200
    # The simulated round-trip must have cost virtual time (packets
    # traversed real links) yet stay far below the measurement interval.
    assert 0 < row["sim_round_trip_s"] < 10.0
    assert row["stale_responses_rejected"] == 0
