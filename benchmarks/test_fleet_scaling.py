"""Benchmark: multi-process fleet scaling (devices/second vs workers).

Runs full fleet rounds through :mod:`repro.experiments.fleet_scaling`
and records the devices/second ladder — pipelined single-process
baseline, sharded loop mode, and ``worker_mode="process"`` at several
worker counts — in the benchmark's ``extra_info``, so successive
scaling PRs have a fixed yardstick (CI uploads the JSON as the
``BENCH_fleet_scaling`` artifact).

Two invariants gate the ladder:

* every row's merged :class:`repro.fleet.FleetHealth` fingerprint must
  equal the baseline's — the scaling numbers are only comparable
  because process-mode rounds provably produce byte-identical answers;
* on a multi-core machine the best process-mode round must beat the
  single-process async baseline on the same 1,000-device fleet (the
  tentpole's acceptance bar).  On a single-core machine no parallel
  speedup exists by construction, so the bar becomes a bounded-overhead
  check: IPC, codec and commit-batch costs must not halve throughput.
"""

import os

from repro.experiments import fleet_scaling

FLEET_SIZE = 1000
WORKER_COUNTS = (1, 2, 4)


def test_process_workers_scale_past_single_process(benchmark):
    rows = benchmark.pedantic(
        fleet_scaling.run_scaling_comparison,
        kwargs=dict(device_count=FLEET_SIZE, worker_counts=WORKER_COUNTS,
                    repeats=2),
        rounds=1, iterations=1)
    baseline = rows[0]
    assert baseline["mode"] == "async-baseline"
    for row in rows:
        assert row["reports"] == FLEET_SIZE
        assert row["responses_lost"] == 0
        # Byte-identity across worker placements: run_scaling_comparison
        # already raised if a fingerprint diverged; pin it here too so
        # the benchmark's own contract is visible.
        assert row["health_sha256"] == baseline["health_sha256"]
        key = f"{row['mode']}_w{row['workers']}_collect_devices_per_second"
        benchmark.extra_info[key] = row["collect_devices_per_second"]
    benchmark.extra_info["cpu_count"] = os.cpu_count()

    baseline_rate = baseline["collect_devices_per_second"]
    process_best = max(row["collect_devices_per_second"] for row in rows
                       if row["mode"] == "sharded-process")
    assert baseline_rate > 0
    if (os.cpu_count() or 1) >= 2:
        # The tentpole's acceptance bar: with real cores available,
        # fanning verification out to worker processes must beat the
        # single-process pipeline on an identical fleet.
        assert process_best >= baseline_rate
    else:
        # Single core: parallel speedup is impossible, so bound the
        # overhead instead — shipping tasks and commit batches over the
        # pipe must cost less than half the round.
        assert process_best >= 0.5 * baseline_rate


def test_socket_transport_round(benchmark):
    row = benchmark.pedantic(
        fleet_scaling.run_round,
        args=("sharded-process", 200),
        kwargs=dict(workers=2, transport="socket"),
        rounds=1, iterations=1)
    assert row["reports"] == 200
    # Loopback datagrams do not drop under a 200-device round.
    assert row["responses_lost"] == 0
    benchmark.extra_info["socket_collect_devices_per_second"] = \
        row["collect_devices_per_second"]
