"""Tests for the RROC models (hardware and software constructions)."""

import pytest

from repro.hw.clock import (
    ClockTamperError,
    ReliableClock,
    SoftwareClock,
    WrappingCounter,
)


class TestReliableClock:
    def test_starts_at_zero(self):
        assert ReliableClock().read() == 0.0

    def test_advance_to_absolute_time(self):
        clock = ReliableClock(frequency_hz=1_000_000.0)
        clock.advance_to(12.5)
        assert clock.read() == pytest.approx(12.5)
        assert clock.cycles == 12_500_000

    def test_advance_by_delta(self):
        clock = ReliableClock(frequency_hz=8_000_000.0)
        clock.advance(1.0)
        clock.advance(0.5)
        assert clock.read() == pytest.approx(1.5)

    def test_cannot_move_backwards(self):
        clock = ReliableClock()
        clock.advance_to(100.0)
        with pytest.raises(ClockTamperError):
            clock.advance_to(50.0)
        with pytest.raises(ClockTamperError):
            clock.advance(-1.0)

    def test_software_write_is_rejected(self):
        clock = ReliableClock()
        clock.advance_to(10.0)
        with pytest.raises(ClockTamperError):
            clock.write(0)
        assert clock.read() == pytest.approx(10.0)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            ReliableClock(frequency_hz=0.0)


class TestWrappingCounter:
    def test_wraps_at_width(self):
        counter = WrappingCounter(frequency_hz=100.0, width_bits=8)
        counter.advance_to(2.0)   # 200 cycles < 256: no wrap
        assert counter.wrap_count() == 0
        wraps = counter.advance_to(6.0)  # 600 cycles -> 2 wraps
        assert wraps == 2
        assert counter.value() == 600 % 256

    def test_cannot_move_backwards(self):
        counter = WrappingCounter(frequency_hz=100.0, width_bits=8)
        counter.advance_to(5.0)
        with pytest.raises(ClockTamperError):
            counter.advance_to(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WrappingCounter(frequency_hz=0.0)
        with pytest.raises(ValueError):
            WrappingCounter(frequency_hz=10.0, width_bits=0)


class TestSoftwareClock:
    def test_reads_combine_high_bits_and_counter(self):
        counter = WrappingCounter(frequency_hz=1000.0, width_bits=10)
        clock = SoftwareClock(counter)
        clock.advance_to(5.0)  # 5000 cycles, modulus 1024 -> 4 wraps
        assert clock.read() == pytest.approx(5.0, rel=1e-6)

    def test_untrusted_wrap_handling_loses_time(self):
        counter = WrappingCounter(frequency_hz=1000.0, width_bits=10)
        clock = SoftwareClock(counter)
        clock.advance_to(5.0, trusted=False)
        # High bits were never updated, so the clock reads less than 5 s.
        assert clock.read() < 5.0

    def test_only_attestation_process_may_set_high_bits(self):
        clock = SoftwareClock(WrappingCounter(frequency_hz=1000.0,
                                              width_bits=10))
        with pytest.raises(ClockTamperError):
            clock.set_high_bits(10, trusted=False)
        clock.set_high_bits(10, trusted=True)
        with pytest.raises(ClockTamperError):
            clock.set_high_bits(5, trusted=True)

    def test_monotonic_across_many_wraps(self):
        counter = WrappingCounter(frequency_hz=66_000_000.0, width_bits=32)
        clock = SoftwareClock(counter)
        previous = 0.0
        for time in (10.0, 65.0, 66.0, 130.0, 500.0):
            clock.advance_to(time)
            value = clock.read()
            assert value >= previous
            assert value == pytest.approx(time, rel=1e-6)
            previous = value
