"""Span tracing: derived ids, deterministic export, clock discipline."""

import json

from repro.obs import SpanTracer, derive_span_id


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_span_ids_are_derived_from_path_and_seed():
    assert derive_span_id("round:1/worker:0") == \
        derive_span_id("round:1/worker:0")
    assert derive_span_id("round:1/worker:0", seed=1) != \
        derive_span_id("round:1/worker:0", seed=2)
    assert derive_span_id("round:2/worker:0") != \
        derive_span_id("round:1/worker:0")
    assert len(derive_span_id("x")) == 16  # 8 bytes hex


def test_round_shard_device_hierarchy():
    clock = _FakeClock()
    tracer = SpanTracer(seed=3, clock=clock)
    with tracer.trace_round(1, devices=4) as round_span:
        clock.now = 1.0
        with tracer.trace_shard(round_span, 0) as shard_span:
            clock.now = 2.0
            tracer.record_device_verify(shard_span, "dev-0001", "healthy")
            clock.now = 3.0
    rows = tracer.export_rows()
    by_path = {row["path"]: row for row in rows}
    root = by_path["round:1/worker:0"]
    shard = by_path["round:1/worker:0/shard:0"]
    device = by_path["round:1/worker:0/shard:0/device:dev-0001"]
    assert root["parent_id"] is None
    assert shard["parent_id"] == root["span_id"]
    assert device["parent_id"] == shard["span_id"]
    assert root["kind"] == "round" and root["attrs"] == {"devices": 4}
    assert (root["start"], root["end"]) == (0.0, 3.0)
    assert (shard["start"], shard["end"]) == (1.0, 3.0)
    assert (device["start"], device["end"]) == (2.0, 2.0)
    assert device["attrs"] == {"device_id": "dev-0001",
                               "status": "healthy"}
    assert tracer.span_count == 3


def test_export_is_sorted_and_order_independent():
    def record(tracer, shard_order):
        with tracer.trace_round(1) as round_span:
            for index in shard_order:
                with tracer.trace_shard(round_span, index) as shard_span:
                    tracer.record_device_verify(
                        shard_span, f"dev-{index:04d}", "healthy")

    forward = SpanTracer(seed=9)
    record(forward, [0, 1, 2])
    backward = SpanTracer(seed=9)
    record(backward, [2, 1, 0])
    assert forward.export_jsonl() == backward.export_jsonl()
    paths = [row["path"] for row in forward.export_rows()]
    assert paths == sorted(paths)


def test_export_jsonl_bytes_are_reproducible(tmp_path):
    def run():
        clock = _FakeClock()
        tracer = SpanTracer(seed=42, clock=clock)
        with tracer.trace_round(1) as round_span:
            with tracer.trace_shard(round_span, 0) as shard_span:
                clock.now = 0.5
                tracer.record_device_verify(shard_span, "dev-0000",
                                            "healthy")
        return tracer

    one, two = run(), run()
    assert one.export_jsonl() == two.export_jsonl()
    path = tmp_path / "trace.jsonl"
    count = one.write_jsonl(str(path))
    lines = path.read_text().splitlines()
    assert count == len(lines) == 3
    for line in lines:
        json.loads(line)  # every row is valid JSON


def test_error_inside_span_is_recorded_and_span_finished():
    tracer = SpanTracer()
    try:
        with tracer.trace_round(1):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    (row,) = tracer.export_rows()
    assert row["attrs"] == {"error": "RuntimeError"}


def test_bind_clock_and_clear():
    tracer = SpanTracer()
    assert tracer.now() == 0.0
    clock = _FakeClock()
    clock.now = 8.0
    tracer.bind_clock(clock)
    assert tracer.now() == 8.0
    with tracer.trace_round(1):
        pass
    assert tracer.span_count == 1
    tracer.clear()
    assert tracer.span_count == 0
    assert tracer.export_rows() == []
