"""Benchmark: Section 6 swarm attestation coverage under mobility."""

import pytest

from repro.experiments import swarm_mobility

_SPEEDS = (0.0, 6.0)


def test_swarm_mobility_sweep(benchmark):
    rows = benchmark(swarm_mobility.run, device_count=25, speeds=_SPEEDS,
                     repetitions=2)
    static = swarm_mobility.coverage_by_protocol(rows, 0.0)
    mobile = swarm_mobility.coverage_by_protocol(rows, 6.0)
    # Static swarm: everyone attests everything.
    for protocol, coverage in static.items():
        assert coverage == pytest.approx(1.0), protocol
    # Mobile swarm: on-demand protocols lose devices, ERASMUS does not.
    assert mobile["erasmus-collection"] >= 0.9
    assert mobile["lisa-alpha"] < mobile["erasmus-collection"]
    assert mobile["seda"] <= mobile["lisa-alpha"] + 1e-9
    # The ERASMUS collection completes orders of magnitude faster.
    durations = {row["protocol"]: row["duration_s"]
                 for row in rows if row["speed"] == 0.0}
    assert durations["erasmus-collection"] < durations["seda"] / 10
