"""SHA-1 implemented from scratch (RFC 3174 / FIPS 180-1).

The paper includes HMAC-SHA1 in Table 1 "for comparison purposes only"
and explicitly excludes it from the actual deployment because of the
SHAttered collision attack.  We implement it anyway so that the Table 1
reproduction covers all three rows, and mark it as deprecated in the
MAC registry (:mod:`repro.crypto.mac`).
"""

from __future__ import annotations

import struct

_MASK32 = 0xFFFFFFFF

_INITIAL_STATE = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)


def _rotl(value: int, amount: int) -> int:
    """Rotate a 32-bit value left by ``amount`` bits."""
    return ((value << amount) | (value >> (32 - amount))) & _MASK32


class Sha1:
    """Streaming SHA-1 hash object with a compression-work counter."""

    digest_size = 20
    block_size = 64
    name = "sha1"

    def __init__(self, data: bytes = b"") -> None:
        self._state = list(_INITIAL_STATE)
        self._buffer = b""
        self._length = 0
        self.compressions = 0
        if data:
            self.update(data)

    def copy(self) -> "Sha1":
        """Return an independent copy of the current hash state."""
        clone = Sha1()
        clone._state = list(self._state)
        clone._buffer = self._buffer
        clone._length = self._length
        clone.compressions = self.compressions
        return clone

    def update(self, data: bytes) -> None:
        """Absorb ``data`` into the hash state."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("SHA-1 input must be bytes-like")
        data = bytes(data)
        self._length += len(data)
        buffer = self._buffer + data
        block_count = len(buffer) // 64
        for i in range(block_count):
            self._compress(buffer[i * 64:(i + 1) * 64])
        self._buffer = buffer[block_count * 64:]

    def digest(self) -> bytes:
        """Return the 20-byte digest of all data absorbed so far."""
        clone = self.copy()
        bit_length = clone._length * 8
        padding = b"\x80" + b"\x00" * ((55 - clone._length) % 64)
        clone.update(padding + struct.pack(">Q", bit_length))
        return struct.pack(">5I", *clone._state)

    def hexdigest(self) -> str:
        """Return the digest as a lowercase hex string."""
        return self.digest().hex()

    def _compress(self, block: bytes) -> None:
        self.compressions += 1
        w = list(struct.unpack(">16I", block))
        for i in range(16, 80):
            w.append(_rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1))

        a, b, c, d, e = self._state
        for i in range(80):
            if i < 20:
                f = (b & c) | (~b & d)
                k = 0x5A827999
            elif i < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif i < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            temp = (_rotl(a, 5) + f + e + k + w[i]) & _MASK32
            e = d
            d = c
            c = _rotl(b, 30)
            b = a
            a = temp

        self._state = [
            (self._state[0] + a) & _MASK32,
            (self._state[1] + b) & _MASK32,
            (self._state[2] + c) & _MASK32,
            (self._state[3] + d) & _MASK32,
            (self._state[4] + e) & _MASK32,
        ]


def sha1_digest(data: bytes) -> bytes:
    """One-shot SHA-1 of ``data``."""
    return Sha1(data).digest()
